// obs layer: metrics registry correctness against hand-computed values,
// JSONL trace round-trip, and the end-to-end balance check -- on a
// symmetric torus under the Eq. (2) probabilities the measured max/mean
// link-load imbalance approaches 1 as the window grows.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "pstar/harness/experiment.hpp"
#include "pstar/harness/observability.hpp"
#include "pstar/obs/metrics.hpp"
#include "pstar/obs/probe.hpp"
#include "pstar/obs/trace.hpp"
#include "pstar/topology/torus.hpp"

namespace pstar {
namespace {

net::Copy make_copy(net::TaskId task, net::Priority prio) {
  net::Copy copy;
  copy.task = task;
  copy.prio = prio;
  return copy;
}

TEST(MetricsRegistry, HandFedEventsMatchHandComputedIntegrals) {
  // One link of a 4-ring receives two copies; every accumulator of the
  // snapshot is checked against pencil-and-paper values.
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);
  registry.begin_window(0.0);

  const net::Copy high = make_copy(1, net::Priority::kHigh);
  const net::Copy low = make_copy(2, net::Priority::kLow);
  // Backlog on link 0: 0 on [0,1), 1 on [1,1.5), 2 on [1.5,3), 1 on
  // [3,5), 0 on [5,10].
  registry.record_enqueue(0, high, 1.0);
  registry.record_enqueue(0, low, 1.5);
  registry.record_transmission(0, high, /*enqueued_at=*/1.0, /*start=*/1.0,
                               /*end=*/3.0);
  registry.record_transmission(0, low, /*enqueued_at=*/1.5, /*start=*/3.0,
                               /*end=*/5.0);
  registry.end_window(10.0);

  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.links.size(), 8u);  // 4-ring: 4 nodes x 2 directions
  EXPECT_EQ(snap.window_start, 0.0);
  EXPECT_EQ(snap.window_end, 10.0);
  EXPECT_EQ(snap.span(), 10.0);

  const auto& hi_cell = snap.cell(0, net::Priority::kHigh);
  EXPECT_EQ(hi_cell.transmissions, 1u);
  EXPECT_DOUBLE_EQ(hi_cell.busy_time, 2.0);
  EXPECT_DOUBLE_EQ(hi_cell.wait.mean(), 0.0);

  const auto& lo_cell = snap.cell(0, net::Priority::kLow);
  EXPECT_EQ(lo_cell.transmissions, 1u);
  EXPECT_DOUBLE_EQ(lo_cell.busy_time, 2.0);
  EXPECT_DOUBLE_EQ(lo_cell.wait.mean(), 1.5);

  EXPECT_DOUBLE_EQ(snap.link_busy(0), 4.0);
  EXPECT_EQ(snap.link_transmissions(0), 2u);
  EXPECT_DOUBLE_EQ(snap.utilization(0), 0.4);
  EXPECT_EQ(snap.total_transmissions(), 2u);
  EXPECT_EQ(snap.class_transmissions(net::Priority::kHigh), 1u);
  EXPECT_EQ(snap.class_transmissions(net::Priority::kMedium), 0u);
  EXPECT_DOUBLE_EQ(snap.class_busy(net::Priority::kLow), 2.0);

  // Time-weighted backlog: integral 0*1 + 1*0.5 + 2*1.5 + 1*2 + 0*5 =
  // 5.5 over a span of 10.
  ASSERT_EQ(snap.backlog_mean.size(), 8u);
  EXPECT_DOUBLE_EQ(snap.backlog_mean[0], 0.55);
  EXPECT_DOUBLE_EQ(snap.backlog_max[0], 2.0);
  EXPECT_DOUBLE_EQ(snap.backlog_mean[3], 0.0);

  // All load on one of 8 links: imbalance = 4.0 / (4.0 / 8).
  EXPECT_DOUBLE_EQ(snap.imbalance_ratio(), 8.0);

  // Class histograms saw the same waits as the RunningStats.
  ASSERT_EQ(snap.class_wait_hist.size(), net::kPriorityClasses);
  EXPECT_EQ(snap.class_wait_hist[0].total(), 1u);
  EXPECT_EQ(snap.class_wait_hist[2].total(), 1u);
  // The 1.5 wait lands in bucket [1.5, 1.75) of the 0.25-wide grid.
  EXPECT_DOUBLE_EQ(snap.class_wait_hist[2].quantile(1.0), 1.75);
}

TEST(MetricsRegistry, WindowClampsBusyAndFiltersCounts) {
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);
  const net::Copy c = make_copy(1, net::Priority::kHigh);

  // Enqueued during warmup, serviced across the window start: busy
  // clamps to [10, 12] and the straddling transmission counts (positive
  // in-window overlap, docs/MODEL.md §11); its wait does not (service
  // started before the window opened).
  registry.record_enqueue(0, c, 5.0);
  registry.begin_window(10.0);
  registry.record_enqueue(0, c, 11.0);
  registry.record_transmission(0, c, 5.0, 8.0, 12.0);
  // Fully inside: everything counts (enqueued 11, served 12..13).
  registry.record_transmission(0, c, 11.0, 12.0, 13.0);
  // Started inside the window but drains past its end: busy clamps to
  // [19, 20]; both the wait sample (service began in-window) and the
  // transmission (positive overlap) count.
  registry.record_enqueue(0, c, 15.0);
  registry.end_window(20.0);
  registry.record_transmission(0, c, 15.0, 19.0, 25.0);
  // Entirely after the window: invisible.
  registry.record_enqueue(0, c, 21.0);
  registry.record_transmission(0, c, 21.0, 21.0, 22.0);

  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  const auto& cell = snap.cell(0, net::Priority::kHigh);
  // Busy time and the transmission count agree on which services belong
  // to the window: every service with positive overlap, so 3 of the 4.
  EXPECT_EQ(cell.transmissions, 3u);
  EXPECT_DOUBLE_EQ(cell.busy_time, 2.0 + 1.0 + 1.0);
  EXPECT_EQ(cell.wait.count(), 2u);           // starts at 12 and 19
  EXPECT_DOUBLE_EQ(cell.wait.sum(), 1.0 + 4.0);
  EXPECT_EQ(snap.span(), 10.0);
}

TEST(MetricsRegistry, DowntimeClampsAndFlushesOpenOutages) {
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);

  // Outage [1, 12] straddles window [10, 20]: only [10, 12] counts, and
  // the failure itself does not (it happened before the window opened).
  registry.record_link_down(0, 1.0);
  registry.begin_window(10.0);
  registry.record_link_up(0, 12.0);
  // Outage [15, ...) is still open at end_window: flushed to [15, 20],
  // and the late repair at 25 adds nothing on top.
  registry.record_link_down(0, 15.0);
  registry.end_window(20.0);

  obs::LinkMetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.down_time[0], 2.0 + 5.0);
  EXPECT_EQ(snap.failures[0], 1u);
  EXPECT_DOUBLE_EQ(snap.availability(0), 1.0 - 7.0 / 10.0);
  EXPECT_DOUBLE_EQ(snap.availability(1), 1.0);

  registry.record_link_up(0, 25.0);
  snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.down_time[0], 7.0);
}

TEST(MetricsRegistry, DropsAndBacklogUnderFiniteQueues) {
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);
  registry.begin_window(0.0);
  const net::Copy c = make_copy(1, net::Priority::kLow);
  registry.record_enqueue(0, c, 1.0);
  registry.record_enqueue(0, c, 1.0);
  registry.record_drop(0, c, 2.0, /*was_queued=*/true);   // push-out victim
  registry.record_drop(0, c, 3.0, /*was_queued=*/false);  // tail drop
  registry.record_transmission(0, c, 1.0, 3.0, 4.0);
  registry.end_window(10.0);

  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.cell(0, net::Priority::kLow).drops, 2u);
  // Backlog: 0 on [0,1), 2 on [1,2), 1 on [2,4), 0 on [4,10] -> 4/10.
  EXPECT_DOUBLE_EQ(snap.backlog_mean[0], 0.4);
  EXPECT_DOUBLE_EQ(snap.backlog_max[0], 2.0);
}

TEST(TraceSink, RoundTripParses) {
  std::ostringstream out;
  obs::JsonlTraceSink sink(out);
  sink.run_header()
      .field("shape", "4x4")
      .field("rho", 0.5)
      .field("note", std::string_view("quote\"back\\slash"));

  net::Task task;
  task.kind = net::TaskKind::kBroadcast;
  task.source = 3;
  task.dest = 3;
  task.length = 1;
  sink.task_created(0.125, 7, task);
  const net::Copy copy = make_copy(7, net::Priority::kLow);
  sink.enqueue(0.125, 7, copy, 12);
  // An awkward double must survive the shortest-round-trip formatter.
  const double start = 1.0 / 3.0;
  sink.transmission(7, copy, 12, 3, 7, 0, topo::Dir::kMinus, 0.125, start,
                    start + 1.0);
  sink.drop(2.5, 7, copy, 12, true);
  sink.retx(3.0, 7, 1, net::RetxMode::kSubtree, 12);
  task.receptions = 15;
  sink.task_completed(9.0, 7, task);

  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u);
  EXPECT_EQ(lines.size(), sink.records());

  // Every record is one flat JSON object with an "ev" discriminator.
  const char* expected_ev[] = {"run", "task", "enq", "tx", "drop", "retx",
                               "done"};
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{') << lines[i];
    EXPECT_EQ(lines[i].back(), '}') << lines[i];
    const std::string tag = "\"ev\":\"" + std::string(expected_ev[i]) + "\"";
    EXPECT_NE(lines[i].find(tag), std::string::npos) << lines[i];
  }
  EXPECT_NE(lines[0].find("\"schema\":6"), std::string::npos);
  EXPECT_NE(lines[0].find("\"note\":\"quote\\\"back\\\\slash\""),
            std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"broadcast\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"dir\":\"-\""), std::string::npos);
  EXPECT_NE(lines[4].find("\"queued\":true"), std::string::npos);
  EXPECT_NE(lines[5].find("\"retry\":1"), std::string::npos);
  EXPECT_NE(lines[5].find("\"mode\":\"subtree\""), std::string::npos);
  EXPECT_NE(lines[5].find("\"link\":12"), std::string::npos);

  // The tx start field parses back to the exact double that was written.
  const std::string key = "\"start\":";
  const std::size_t pos = lines[3].find(key);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_DOUBLE_EQ(std::strtod(lines[3].c_str() + pos + key.size(), nullptr),
                   start);
}

// ---------------------------------------------------------------------------
// imbalance_ratio / dimension_imbalance defined-value policy: degenerate
// windows return exactly 1.0 and the ratios are never NaN (the adaptive
// control loop and CSV export both consume them unguarded).

TEST(Metrics, AllIdleWindowImbalanceIsOne) {
  const topo::Torus torus(topo::Shape{4, 4});
  obs::MetricsRegistry registry(torus);
  registry.begin_window(0.0);
  registry.end_window(10.0);
  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.imbalance_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(snap.dimension_imbalance(), 1.0);
}

TEST(Metrics, ZeroSpanWindowImbalanceIsOne) {
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);
  registry.begin_window(5.0);
  registry.end_window(5.0);
  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.imbalance_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(snap.dimension_imbalance(), 1.0);
}

TEST(Metrics, FullyFaultedLinksAreExcludedFromImbalance) {
  // Link 0 is down for the whole window; its forced-zero busy time must
  // not drag the mean down.  The other 7 links of the 4-ring carry equal
  // load, so the ratio over surviving links is exactly 1.
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);
  registry.begin_window(0.0);
  registry.record_link_down(0, 0.0);
  const net::Copy c = make_copy(1, net::Priority::kHigh);
  for (topo::LinkId link = 1; link < torus.link_count(); ++link) {
    registry.record_transmission(link, c, /*enqueued_at=*/0.0, /*start=*/1.0,
                                 /*end=*/3.0);
  }
  registry.end_window(10.0);
  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.availability(0), 0.0);
  EXPECT_DOUBLE_EQ(snap.imbalance_ratio(), 1.0);
}

TEST(Metrics, EveryLinkFaultedImbalanceIsOne) {
  // With no link available at all there is nothing to compare; the
  // policy value is 1.0, never NaN.
  const topo::Torus torus(topo::Shape{4});
  obs::MetricsRegistry registry(torus);
  registry.begin_window(0.0);
  for (topo::LinkId link = 0; link < torus.link_count(); ++link) {
    registry.record_link_down(link, 0.0);
  }
  registry.end_window(10.0);
  const obs::LinkMetricsSnapshot snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.imbalance_ratio(), 1.0);
  EXPECT_FALSE(std::isnan(snap.dimension_imbalance()));
}

TEST(Metrics, DimensionImbalanceSeesGroupSkewNotWithinGroupSpread) {
  // 4x4 torus: 4 (dim, dir) groups of 16 links.  Doubling every dim-0
  // plus-link's busy time gives group means (2, 1, 1, 1), so the group
  // ratio is 2 / 1.25 = 1.6 -- and here the per-link ratio agrees.
  const topo::Torus torus(topo::Shape{4, 4});
  const net::Copy c = make_copy(1, net::Priority::kHigh);
  obs::MetricsRegistry even(torus);
  even.begin_window(0.0);
  for (topo::LinkId l = 0; l < torus.link_count(); ++l) {
    const auto& info = torus.info(l);
    const double busy =
        info.dim == 0 && info.dir == topo::Dir::kPlus ? 2.0 : 1.0;
    even.record_transmission(l, c, 0.0, 1.0, 1.0 + busy);
  }
  even.end_window(10.0);
  const obs::LinkMetricsSnapshot balanced = even.snapshot();
  EXPECT_DOUBLE_EQ(balanced.dimension_imbalance(), 1.6);
  EXPECT_DOUBLE_EQ(balanced.imbalance_ratio(), 1.6);

  // Concentrating the whole dim-0-plus load on ONE link leaves the group
  // means unchanged: the per-link ratio explodes but the dimension ratio
  // -- the component the ending vector x can steer -- does not move.
  obs::MetricsRegistry skewed(torus);
  skewed.begin_window(0.0);
  topo::LinkId hot = topo::kInvalidLink;
  for (topo::LinkId l = 0; l < torus.link_count(); ++l) {
    const auto& info = torus.info(l);
    if (info.dim == 0 && info.dir == topo::Dir::kPlus) {
      if (hot == topo::kInvalidLink) hot = l;
      continue;
    }
    skewed.record_transmission(l, c, 0.0, 1.0, 2.0);
  }
  for (int i = 0; i < 16; ++i) {
    skewed.record_transmission(hot, c, 0.0, 1.0, 3.0);
  }
  skewed.end_window(100.0);
  const obs::LinkMetricsSnapshot lumpy = skewed.snapshot();
  EXPECT_DOUBLE_EQ(lumpy.dimension_imbalance(), 1.6);
  EXPECT_GT(lumpy.imbalance_ratio(), 10.0);
}

TEST(Metrics, SymmetricTorusImbalanceApproachesOne) {
  // Eq. (2) balances expected load across ALL directed links of a
  // symmetric torus, so the measured imbalance is pure counting noise
  // and must shrink toward 1 as the measurement window grows.
  auto imbalance_at = [](double measure) {
    harness::ExperimentSpec spec;
    spec.shape = topo::Shape{4, 4};
    spec.rho = 0.6;
    spec.warmup = 300.0;
    spec.measure = measure;
    spec.seed = 99;
    spec.collect_link_metrics = true;
    const harness::ExperimentResult r = harness::run_experiment(spec);
    EXPECT_NE(r.link_metrics, nullptr);
    // Engine and registry measure the same window with the same clamp
    // rules, so their network-wide utilization must agree closely.
    EXPECT_NEAR(r.link_metrics->mean_utilization(), r.utilization_mean, 0.01);
    return r.link_metrics->imbalance_ratio();
  };

  const double short_window = imbalance_at(500.0);
  const double long_window = imbalance_at(8000.0);
  EXPECT_GT(short_window, 1.0);
  EXPECT_GT(long_window, 1.0);
  EXPECT_LT(long_window, short_window);
  EXPECT_LT(long_window, 1.10);
}

TEST(Metrics, RegistrySeesEveryEngineTransmission) {
  // Attached over a whole run (no windows), the registry's totals must
  // match the engine's own aggregate metrics exactly.
  harness::ExperimentSpec spec;
  spec.shape = topo::Shape{4, 4};
  spec.rho = 0.5;
  spec.warmup = 0.0;
  spec.measure = 400.0;
  spec.seed = 5;
  spec.collect_link_metrics = true;
  const harness::ExperimentResult r = harness::run_experiment(spec);
  ASSERT_NE(r.link_metrics, nullptr);
  const auto& snap = *r.link_metrics;

  // Per-class wait means from the registry match the merged view.
  const auto lo = snap.class_wait(net::Priority::kLow);
  std::uint64_t hist_total = 0;
  for (const auto& h : snap.class_wait_hist) hist_total += h.total();
  std::uint64_t wait_total = 0;
  for (std::size_t c = 0; c < net::kPriorityClasses; ++c) {
    wait_total += snap.class_wait(static_cast<net::Priority>(c)).count();
  }
  EXPECT_EQ(hist_total, wait_total);
  EXPECT_GT(lo.count(), 0u);

  // The harness exporter agrees with the snapshot it wraps.
  std::ostringstream csv;
  harness::write_link_metrics_csv_header(csv, "");
  harness::write_link_metrics_csv(csv, snap, "");
  std::string line;
  std::istringstream in(csv.str());
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, snap.links.size() + 1);  // header + one row per link
}

}  // namespace
}  // namespace pstar
