#include "pstar/traffic/length.hpp"
#include "pstar/traffic/workload.hpp"

#include <gtest/gtest.h>

#include "pstar/net/engine.hpp"
#include "pstar/routing/combined.hpp"
#include "pstar/routing/star_probabilities.hpp"

namespace pstar::traffic {
namespace {

using topo::Shape;
using topo::Torus;

TEST(LengthDist, UnitIsAlwaysOne) {
  sim::Rng rng(1);
  const LengthDist d = LengthDist::unit();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 1u);
  EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(LengthDist, FixedValue) {
  sim::Rng rng(2);
  const LengthDist d = LengthDist::fixed_of(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 7u);
  EXPECT_DOUBLE_EQ(d.mean(), 7.0);
  EXPECT_THROW(LengthDist::fixed_of(0), std::invalid_argument);
}

TEST(LengthDist, GeometricMeanMatches) {
  sim::Rng rng(3);
  const LengthDist d = LengthDist::geometric(4.0);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const auto v = d.sample(rng);
    EXPECT_GE(v, 1u);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
  EXPECT_THROW(LengthDist::geometric(0.5), std::invalid_argument);
}

TEST(LengthDist, BimodalMixture) {
  sim::Rng rng(4);
  const LengthDist d = LengthDist::bimodal(1, 10, 0.25);
  int longs = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const auto v = d.sample(rng);
    EXPECT_TRUE(v == 1u || v == 10u);
    longs += v == 10u;
  }
  EXPECT_NEAR(longs, n / 4, n / 50);
  EXPECT_DOUBLE_EQ(d.mean(), 0.75 * 1.0 + 0.25 * 10.0);
  EXPECT_THROW(LengthDist::bimodal(1, 4, 1.5), std::invalid_argument);
}

struct WorkloadFixture {
  explicit WorkloadFixture(Shape shape)
      : torus(std::move(shape)),
        rng(31),
        policy(make_policy()),
        engine(sim, torus, *policy, rng) {}

  std::unique_ptr<routing::CombinedPolicy> make_policy() {
    routing::SdcBroadcastConfig cfg;
    cfg.ending_probabilities =
        routing::uniform_probabilities(torus.dims()).x;
    cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
    return std::make_unique<routing::CombinedPolicy>(
        std::make_unique<routing::SdcBroadcastPolicy>(torus, cfg),
        std::make_unique<routing::UnicastPolicy>(torus,
                                                 routing::UnicastConfig{}));
  }

  sim::Simulator sim;
  Torus torus;
  sim::Rng rng;
  std::unique_ptr<routing::CombinedPolicy> policy;
  net::Engine engine;
};

TEST(Workload, GeneratesAtTheConfiguredRate) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.01;
  cfg.lambda_unicast = 0.03;
  cfg.stop_time = 2000.0;
  Workload w(f.sim, f.engine, f.rng, cfg);
  w.start();
  f.sim.run();
  // Expected arrivals: N (lb + lr) T = 16 * 0.04 * 2000 = 1280.
  EXPECT_NEAR(static_cast<double>(w.generated()), 1280.0, 120.0);
  const auto& m = f.engine.metrics();
  const double total = static_cast<double>(m.tasks_generated[0] +
                                           m.tasks_generated[1]);
  EXPECT_DOUBLE_EQ(total, static_cast<double>(w.generated()));
  // Broadcast share of tasks = 0.01/0.04 = 25%.
  EXPECT_NEAR(static_cast<double>(m.tasks_generated[0]) / total, 0.25, 0.05);
}

TEST(Workload, StopsAtStopTime) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.05;
  cfg.stop_time = 100.0;
  Workload w(f.sim, f.engine, f.rng, cfg);
  w.start();
  f.sim.run();
  // Everything drains shortly after the horizon: no runaway events.
  EXPECT_LT(f.sim.now(), 130.0);
  EXPECT_EQ(f.engine.inflight_copies(), 0u);
}

TEST(Workload, ManualStopCeasesGeneration) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.05;
  Workload w(f.sim, f.engine, f.rng, cfg);
  w.start();
  f.sim.at(50.0, [&w](sim::Simulator&) { w.stop(); });
  // Without stop this would run forever; the event budget is a backstop.
  f.sim.run(std::numeric_limits<double>::infinity(), 10'000'000);
  EXPECT_EQ(f.engine.inflight_copies(), 0u);
  EXPECT_LT(f.sim.now(), 200.0);
}

TEST(Workload, ZeroRateGeneratesNothing) {
  WorkloadFixture f(Shape{4, 4});
  Workload w(f.sim, f.engine, f.rng, WorkloadConfig{});
  w.start();
  f.sim.run();
  EXPECT_EQ(w.generated(), 0u);
}

TEST(Workload, UnicastDestinationsExcludeSource) {
  WorkloadFixture f(Shape{3, 3});
  WorkloadConfig cfg;
  cfg.lambda_unicast = 0.05;
  cfg.stop_time = 1000.0;
  Workload w(f.sim, f.engine, f.rng, cfg);
  f.engine.begin_measurement();
  w.start();
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_GT(m.tasks_completed[1], 100u);
  // Every unicast made at least one hop: destinations never equal the
  // source, so a zero minimum delay would betray a self-addressed packet.
  EXPECT_GT(m.unicast_delay.count(), 100u);
  EXPECT_GE(m.unicast_delay.min(), 1.0);
}

TEST(Workload, HotspotSkewsSources) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.02;
  cfg.stop_time = 2000.0;
  cfg.hotspot_fraction = 0.5;
  cfg.hotspot_node = 5;
  Workload w(f.sim, f.engine, f.rng, cfg);
  f.engine.begin_measurement();
  w.start();
  f.sim.run();
  f.engine.end_measurement();
  // Node 5's outgoing links should carry far more than an average
  // node's: ~50% of all trees root there.
  const auto& tx = f.engine.metrics().link_transmissions;
  std::uint64_t hot = 0, total = 0;
  for (topo::LinkId id = 0; id < f.torus.link_count(); ++id) {
    const auto count = tx[static_cast<std::size_t>(id)];
    total += count;
    if (f.torus.info(id).from == 5) hot += count;
  }
  ASSERT_GT(total, 0u);
  // A uniform workload would put ~1/16 of root transmissions here; the
  // hotspot puts ~1/2 of the roots' first hops at node 5.
  EXPECT_GT(static_cast<double>(hot) / static_cast<double>(total), 0.10);
}

TEST(Workload, HotspotValidation) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.01;
  cfg.hotspot_fraction = 1.5;
  EXPECT_THROW(Workload(f.sim, f.engine, f.rng, cfg), std::invalid_argument);
  cfg.hotspot_fraction = 0.5;
  cfg.hotspot_node = 99;
  EXPECT_THROW(Workload(f.sim, f.engine, f.rng, cfg), std::invalid_argument);
}

TEST(Workload, FullHotspotRootsEverythingAtOneNode) {
  WorkloadFixture f(Shape{3, 3});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.05;
  cfg.stop_time = 400.0;
  cfg.hotspot_fraction = 1.0;
  cfg.hotspot_node = 4;
  Workload w(f.sim, f.engine, f.rng, cfg);
  w.start();
  f.sim.run();
  // Every broadcast roots at node 4: all tasks completed, each with
  // exactly N-1 transmissions.
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.tasks_completed[0], m.tasks_generated[0]);
  EXPECT_EQ(m.transmissions, m.tasks_generated[0] * 8u);
}

TEST(Workload, RejectsNegativeRates) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = -0.1;
  EXPECT_THROW(Workload(f.sim, f.engine, f.rng, cfg), std::invalid_argument);
}

TEST(Workload, VariableLengthsReachTheEngine) {
  WorkloadFixture f(Shape{4, 4});
  WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.02;
  cfg.length = LengthDist::fixed_of(3);
  cfg.stop_time = 200.0;
  Workload w(f.sim, f.engine, f.rng, cfg);
  f.engine.begin_measurement();
  w.start();
  f.sim.run();
  // Every hop takes 3 time units, so even the first reception of any
  // broadcast is at least 3.
  EXPECT_GE(f.engine.metrics().reception_delay.min(), 3.0);
}

}  // namespace
}  // namespace pstar::traffic
