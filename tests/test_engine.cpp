#include "pstar/net/engine.hpp"

#include <gtest/gtest.h>

#include "pstar/routing/sdc_broadcast.hpp"
#include "pstar/routing/star_probabilities.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar::net {
namespace {

using topo::Dir;
using topo::Shape;
using topo::Torus;

/// Policy that routes nothing; tests drive Engine::send directly.
class NullPolicy : public RoutingPolicy {
 public:
  void on_task(Engine&, TaskId, topo::NodeId) override {}
  void on_receive(Engine&, topo::NodeId, const Copy&) override {}
};

struct EngineFixture {
  explicit EngineFixture(Shape shape, EngineConfig cfg = {})
      : torus(std::move(shape)), rng(7), engine(sim, torus, policy, rng, cfg) {}

  sim::Simulator sim;
  Torus torus;
  NullPolicy policy;
  sim::Rng rng;
  Engine engine;
};

Copy copy_for(TaskId task, Priority prio) {
  Copy c;
  c.task = task;
  c.prio = prio;
  return c;
}

TEST(Engine, SingleHopTakesOneTimeUnit) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  EXPECT_EQ(f.engine.metrics().transmissions, 1u);
  EXPECT_DOUBLE_EQ(f.sim.now(), 1.0);
  EXPECT_DOUBLE_EQ(f.engine.metrics().reception_delay.mean(), 1.0);
}

TEST(Engine, ServiceTimeScalesWithLength) {
  EngineFixture f(Shape{4, 4});
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 5);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.sim.now(), 5.0);
}

TEST(Engine, RejectsZeroLength) {
  EngineFixture f(Shape{4, 4});
  EXPECT_THROW(f.engine.create_task(TaskKind::kBroadcast, 0, 0, 0),
               std::invalid_argument);
}

TEST(Engine, RejectsSendOnMissingDimension) {
  EngineFixture f(Shape{1, 4});
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  EXPECT_THROW(f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh)),
               std::invalid_argument);
}

TEST(Engine, QueuedCopiesWaitForTheServer) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  // Two copies on the same link back-to-back: second waits one unit.
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.sim.now(), 2.0);
  const auto& wait = f.engine.metrics().wait_by_class[0];
  EXPECT_EQ(wait.count(), 2u);
  EXPECT_DOUBLE_EQ(wait.mean(), 0.5);  // waits 0 and 1
}

TEST(Engine, StrictPriorityOvertakesFifo) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  // t=0: a low-priority copy seizes the link.
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));
  // While busy, queue another low and then a high: the high one must be
  // served first despite arriving later.
  f.sim.at(0.25, [&f, id](sim::Simulator&) {
    f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));
  });
  f.sim.at(0.5, [&f, id](sim::Simulator&) {
    f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  });
  f.sim.run();
  const auto& m = f.engine.metrics();
  // High waits 1.0 - 0.5 = 0.5; the queued low waits 2.0 - 0.25 = 1.75.
  EXPECT_DOUBLE_EQ(m.wait_by_class[0].mean(), 0.5);
  EXPECT_DOUBLE_EQ(m.wait_by_class[2].max(), 1.75);
  EXPECT_EQ(m.transmissions_by_class[0], 1u);
  EXPECT_EQ(m.transmissions_by_class[2], 2u);
}

TEST(Engine, NonPreemptiveServiceFinishesLowFirst) {
  EngineFixture f(Shape{4, 4});
  const TaskId lo = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 10);
  const TaskId hi = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(lo, Priority::kLow));
  f.sim.at(1.0, [&f, hi](sim::Simulator&) {
    f.engine.send(0, 0, Dir::kPlus, copy_for(hi, Priority::kHigh));
  });
  f.sim.run();
  // Low runs to completion at t=10; the high copy then takes one unit.
  EXPECT_DOUBLE_EQ(f.sim.now(), 11.0);
}

TEST(Engine, MediumClassSitsBetween) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));  // in service
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kMedium));
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_DOUBLE_EQ(m.wait_by_class[0].mean(), 1.0);  // high served second
  EXPECT_DOUBLE_EQ(m.wait_by_class[1].mean(), 2.0);  // medium third
  EXPECT_DOUBLE_EQ(m.wait_by_class[2].max(), 3.0);   // queued low last
}

TEST(Engine, BroadcastReceptionCountsTowardCompletion) {
  // Drive a real broadcast with the SDC policy on a 3x3 torus.
  const Torus torus(Shape{3, 3});
  sim::Simulator sim;
  sim::Rng rng(1);
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = {0.5, 0.5};
  cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
  routing::SdcBroadcastPolicy policy(torus, cfg);
  Engine engine(sim, torus, policy, rng);
  engine.begin_measurement();
  engine.create_task(TaskKind::kBroadcast, 4, 4, 1);
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.transmissions, 8u);  // N-1
  EXPECT_EQ(m.tasks_completed[0], 1u);
  EXPECT_EQ(m.reception_delay.count(), 8u);
  EXPECT_EQ(m.broadcast_delay.count(), 1u);
  // Idle network: completion time equals the tree depth (2 + 2 arcs... for
  // 3x3 the long arc is 1 per direction, so depth 2).
  EXPECT_DOUBLE_EQ(m.broadcast_delay.mean(), 2.0);
  EXPECT_EQ(engine.inflight_copies(), 0u);
  EXPECT_EQ(engine.inflight_tasks(TaskKind::kBroadcast), 0u);
}

TEST(Engine, TasksBeforeMeasurementAreNotMeasured) {
  const Torus torus(Shape{3, 3});
  sim::Simulator sim;
  sim::Rng rng(2);
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = {0.5, 0.5};
  cfg.priorities = routing::priority_map(routing::Discipline::kFcfs);
  routing::SdcBroadcastPolicy policy(torus, cfg);
  Engine engine(sim, torus, policy, rng);
  engine.create_task(TaskKind::kBroadcast, 0, 0, 1);  // before window
  sim.run();
  engine.begin_measurement();
  engine.create_task(TaskKind::kBroadcast, 1, 1, 1);  // inside window
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[0], 2u);
  EXPECT_EQ(m.broadcast_delay.count(), 1u);
  EXPECT_EQ(m.reception_delay.count(), 8u);
}

TEST(Engine, InstabilityGuardTripsAndStops) {
  EngineConfig cfg;
  cfg.max_inflight_copies = 4;
  EngineFixture f(Shape{4, 4}, cfg);
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  for (int i = 0; i < 6; ++i) {
    f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  }
  EXPECT_TRUE(f.engine.unstable());
}

TEST(Engine, UtilizationReflectsBusyTime) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  f.engine.end_measurement();
  const auto& m = f.engine.metrics();
  // One link busy 2 of 2 time units; the other 63 links idle.
  EXPECT_DOUBLE_EQ(m.max_utilization(), 1.0);
  EXPECT_NEAR(m.mean_utilization(), 1.0 / 64.0, 1e-12);
  EXPECT_GT(m.utilization_cv(), 1.0);
}

TEST(Engine, UtilizationWithoutEndMeasurementUsesLastEvent) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  // end_measurement was never called: the span clamps to the last
  // accounted event (t=2) instead of leaving every utilization silently
  // 0 against an infinite window (docs/MODEL.md §11).
  const auto& m = f.engine.metrics();
  EXPECT_DOUBLE_EQ(m.window_span(), 2.0);
  EXPECT_DOUBLE_EQ(m.max_utilization(), 1.0);
  EXPECT_NEAR(m.mean_utilization(), 1.0 / 64.0, 1e-12);
  EXPECT_GT(m.utilization_cv(), 1.0);
}

TEST(Engine, WindowStraddlersCountWhenTheyOverlap) {
  EngineFixture f(Shape{4, 4});
  const topo::LinkId link = f.torus.link(0, 0, Dir::kPlus);
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 4);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // [0, 4]
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // [4, 8]
  f.sim.at(2.0, [&f](sim::Simulator&) { f.engine.begin_measurement(); });
  f.sim.at(6.0, [&f](sim::Simulator&) { f.engine.end_measurement(); });
  f.sim.run();
  const auto& m = f.engine.metrics();
  // Both services straddle a window edge; each is attributed to the
  // window (positive overlap) with its busy time clamped to it, so the
  // per-link busy integral and transmission count agree on membership.
  EXPECT_DOUBLE_EQ(m.link_busy_time[static_cast<std::size_t>(link)], 4.0);
  EXPECT_EQ(m.link_transmissions[static_cast<std::size_t>(link)], 2u);
}

TEST(Engine, PushOutAdmissionUpdatesTheInflightGauge) {
  EngineConfig cfg;
  cfg.queue_capacity = 2;
  cfg.drop_policy = DropPolicy::kPushOutLow;
  EngineFixture f(Shape{4, 4}, cfg);
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // serving
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // queued
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));   // queued
  f.sim.at(0.5, [&f, id](sim::Simulator&) {
    // Queue full: this high-class arrival evicts the queued low copy.
    f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  });
  f.sim.run();
  f.engine.end_measurement();
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.drops_by_class[2], 1u);
  EXPECT_EQ(m.transmissions, 3u);
  EXPECT_EQ(f.engine.inflight_copies(), 0u);
  // Gauge integral over [0, 3]: 3 copies in flight on [0, 1] (the
  // eviction at 0.5 swaps one copy for another), 2 on [1, 2], 1 on
  // [2, 3] -> mean 2.  The push-out admission path must drive the gauge
  // exactly like normal admission, or the 0.5 -> 1 stretch reads stale.
  EXPECT_DOUBLE_EQ(m.inflight_copies.mean(), 2.0);
}

TEST(Engine, VirtualChannelCountsAreRecorded) {
  EngineFixture f(Shape{4, 4});
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  Copy a = copy_for(id, Priority::kHigh);
  a.vc = 0;
  Copy b = copy_for(id, Priority::kHigh);
  b.vc = 1;
  f.engine.send(0, 0, Dir::kPlus, a);
  f.engine.send(0, 1, Dir::kPlus, b);
  f.sim.run();
  EXPECT_EQ(f.engine.metrics().transmissions_by_vc[0], 1u);
  EXPECT_EQ(f.engine.metrics().transmissions_by_vc[1], 1u);
}

TEST(Engine, OneNodeBroadcastCompletesInstantly) {
  EngineFixture f(Shape{1});
  f.engine.begin_measurement();
  f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  EXPECT_EQ(f.engine.metrics().tasks_completed[0], 1u);
  EXPECT_DOUBLE_EQ(f.engine.metrics().broadcast_delay.mean(), 0.0);
}

}  // namespace
}  // namespace pstar::net
