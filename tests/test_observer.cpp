// Runtime path validation via the engine Observer hook: while a full
// random workload runs, every transmission is checked against the SDC
// broadcast schedule and the shortest-path unicast invariants -- packet
// by packet, not just in aggregate.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "pstar/core/policy_factory.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/net/observer.hpp"
#include "pstar/queueing/throughput.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"
#include "pstar/topology/ring.hpp"
#include "pstar/traffic/workload.hpp"

namespace pstar {
namespace {

using topo::Shape;
using topo::Torus;

/// Observer that replays every task's transmissions and asserts the
/// invariants of its routing scheme.
class PathValidator : public net::Observer {
 public:
  explicit PathValidator(const Torus& torus) : torus_(torus) {}

  void on_task_created(net::TaskId task, const net::Task& info) override {
    auto& st = live_[task];
    st = TaskTrace{};
    st.kind = info.kind;
    st.source = info.source;
    st.dest = info.dest;
    st.created = info.created;
    st.received.insert(info.source);
  }

  void on_enqueue(net::TaskId task, const net::Copy& /*copy*/,
                  topo::LinkId link, double now) override {
    ++enqueues_;
    enqueue_time_[{task, link}] = now;
  }

  void on_transmission(net::TaskId task, const net::Copy& copy,
                       topo::LinkId link, topo::NodeId from, topo::NodeId to,
                       std::int32_t dim, topo::Dir /*dir*/, double enqueued_at,
                       double start, double end) override {
    auto it = live_.find(task);
    ASSERT_NE(it, live_.end()) << "transmission for unknown task";
    TaskTrace& st = it->second;
    EXPECT_GE(start, st.created);
    EXPECT_GT(end, start);
    ++st.transmissions;

    // Queue-entry timestamp: every transmission was preceded by a
    // matching on_enqueue at exactly enqueued_at, and the per-link wait
    // (start - enqueued_at) is non-negative.
    EXPECT_LE(enqueued_at, start) << "service started before queue entry";
    const auto enq = enqueue_time_.find({task, link});
    ASSERT_NE(enq, enqueue_time_.end())
        << "transmission without a matching on_enqueue";
    EXPECT_EQ(enq->second, enqueued_at);
    enqueue_time_.erase(enq);

    if (st.kind == net::TaskKind::kBroadcast) {
      // SDC tree invariants: sender already holds the packet, receiver is
      // new, and the traversal dimension matches the copy's phase under
      // its ending dimension.
      EXPECT_TRUE(st.received.count(from))
          << "broadcast forwarded by a node that never received it";
      EXPECT_FALSE(st.received.count(to)) << "node received a second copy";
      st.received.insert(to);
      const std::int32_t d = torus_.dims();
      const auto& bs = copy.bcast;
      EXPECT_EQ(dim, (bs.ending_dim + 1 + bs.phase) % d);
      // Paper's virtual-channel rule.
      EXPECT_EQ(copy.vc, dim > bs.ending_dim ? 0 : 1);
      // Ending-dimension transmissions are exactly the last phase.
      EXPECT_EQ(bs.phase == d - 1, dim == bs.ending_dim && d > 1);
    } else {
      // Unicast: each hop shrinks the remaining shortest distance by one.
      EXPECT_EQ(from, st.at.value_or(st.source));
      st.at = to;
    }
  }

  void on_task_completed(net::TaskId task, const net::Task& info,
                         double time) override {
    auto it = live_.find(task);
    ASSERT_NE(it, live_.end());
    const TaskTrace& st = it->second;
    EXPECT_GE(time, st.created);
    if (st.kind == net::TaskKind::kBroadcast) {
      EXPECT_EQ(st.received.size(),
                static_cast<std::size_t>(torus_.node_count()));
      EXPECT_EQ(st.transmissions,
                static_cast<std::uint64_t>(torus_.node_count() - 1));
    } else {
      EXPECT_EQ(st.at.value_or(st.source), st.dest);
      // Shortest-path length.
      std::int64_t dist = 0;
      for (std::int32_t i = 0; i < torus_.dims(); ++i) {
        dist += topo::ring_distance(torus_.shape().coord_of(st.source, i),
                                    torus_.shape().coord_of(st.dest, i),
                                    torus_.shape().size(i));
      }
      EXPECT_EQ(st.transmissions, static_cast<std::uint64_t>(dist));
    }
    EXPECT_EQ(info.receptions, st.kind == net::TaskKind::kBroadcast
                                   ? static_cast<std::uint32_t>(
                                         torus_.node_count() - 1)
                                   : info.receptions);
    ++completed_;
    live_.erase(it);
  }

  std::uint64_t completed() const { return completed_; }
  std::size_t live_tasks() const { return live_.size(); }
  std::uint64_t enqueues() const { return enqueues_; }
  std::size_t pending_enqueues() const { return enqueue_time_.size(); }

 private:
  struct TaskTrace {
    net::TaskKind kind = net::TaskKind::kBroadcast;
    topo::NodeId source = 0;
    topo::NodeId dest = 0;
    double created = 0.0;
    std::uint64_t transmissions = 0;
    std::set<topo::NodeId> received;      // broadcast
    std::optional<topo::NodeId> at;       // unicast position
  };

  const Torus& torus_;
  std::map<net::TaskId, TaskTrace> live_;
  std::map<std::pair<net::TaskId, topo::LinkId>, double> enqueue_time_;
  std::uint64_t completed_ = 0;
  std::uint64_t enqueues_ = 0;
};

class ObserverValidation : public ::testing::TestWithParam<Shape> {};

TEST_P(ObserverValidation, FullWorkloadSatisfiesPathInvariants) {
  const Torus torus(GetParam());
  sim::Rng rng(2027);
  auto policy = core::make_policy(torus, core::Scheme::priority_star(),
                                  0.5, 0.5);
  sim::Simulator sim;
  net::Engine engine(sim, torus, *policy, rng);
  PathValidator validator(torus);
  engine.set_observer(&validator);

  const auto rates = queueing::rates_for_rho(torus, 0.7, 0.5);
  traffic::WorkloadConfig cfg;
  cfg.lambda_broadcast = rates.lambda_b;
  cfg.lambda_unicast = rates.lambda_r;
  cfg.stop_time = 300.0;
  traffic::Workload workload(sim, engine, rng, cfg);
  workload.start();
  sim.run();

  EXPECT_GT(validator.completed(), 50u) << GetParam().to_string();
  EXPECT_EQ(validator.live_tasks(), 0u) << "tasks leaked";
  EXPECT_EQ(validator.completed(),
            engine.metrics().tasks_completed[0] +
                engine.metrics().tasks_completed[1]);
  // Every copy admitted to a link was eventually transmitted, and each
  // transmission carried the matching queue-entry timestamp.
  EXPECT_EQ(validator.enqueues(), engine.metrics().transmissions);
  EXPECT_EQ(validator.pending_enqueues(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ObserverValidation,
                         ::testing::Values(Shape{5, 5}, Shape{4, 8},
                                           Shape{3, 4, 5}, Shape{8, 8},
                                           Shape{2, 4, 6},
                                           Shape::hypercube(5)),
                         [](const auto& info) {
                           std::string name = info.param.to_string();
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name;
                         });

TEST(Observer, MeshBroadcastsSatisfyTreeInvariants) {
  // Same per-packet tree validation on a mesh: exactly-once coverage,
  // sender-already-holds, phase-dimension and VC rules all hold with
  // line arcs in place of ring arcs.  (Broadcast-only: the validator's
  // unicast distance check assumes wraparound.)
  const Torus mesh = Torus::mesh(Shape{5, 5});
  sim::Rng rng(2028);
  auto policy = core::make_policy(mesh, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, mesh, *policy, rng);
  PathValidator validator(mesh);
  engine.set_observer(&validator);
  for (int i = 0; i < 40; ++i) {
    engine.create_task(net::TaskKind::kBroadcast,
                       static_cast<topo::NodeId>(rng.below(25)), 0, 1);
    sim.run();
  }
  EXPECT_EQ(validator.completed(), 40u);
  EXPECT_EQ(validator.live_tasks(), 0u);
}

TEST(Observer, FcfsDirectAlsoSatisfiesTreeInvariants) {
  const Torus torus(Shape{4, 8});
  sim::Rng rng(31);
  auto policy = core::make_policy(torus, core::Scheme::fcfs_direct(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, torus, *policy, rng);
  PathValidator validator(torus);
  engine.set_observer(&validator);
  for (int i = 0; i < 30; ++i) {
    engine.create_task(net::TaskKind::kBroadcast,
                       static_cast<topo::NodeId>(rng.below(32)), 0, 1);
  }
  sim.run();
  EXPECT_EQ(validator.completed(), 30u);
}

TEST(Observer, EnqueueTimestampReconstructsPerLinkWait) {
  // Three simultaneous broadcasts on a 2-node ring serialize on the one
  // outgoing link of the source: the enqueue timestamps surfaced through
  // on_enqueue / on_transmission must reconstruct waits of exactly
  // 0, 1, 2 time units, matching the engine's own wait_by_class stats.
  struct WaitCollector : net::Observer {
    std::vector<double> waits;
    std::vector<double> enqueues;
    void on_enqueue(net::TaskId, const net::Copy&, topo::LinkId,
                    double now) override {
      enqueues.push_back(now);
    }
    void on_transmission(net::TaskId, const net::Copy&, topo::LinkId,
                         topo::NodeId, topo::NodeId, std::int32_t, topo::Dir,
                         double enqueued_at, double start, double) override {
      waits.push_back(start - enqueued_at);
    }
  };

  const Torus torus(Shape{2});
  sim::Rng rng(7);
  auto policy = core::make_policy(torus, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, torus, *policy, rng);
  WaitCollector collector;
  engine.set_observer(&collector);
  engine.begin_measurement();

  for (int i = 0; i < 3; ++i) {
    engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  }
  sim.run();

  ASSERT_EQ(collector.enqueues.size(), 3u);
  for (double t : collector.enqueues) EXPECT_EQ(t, 0.0);
  ASSERT_EQ(collector.waits.size(), 3u);
  std::vector<double> sorted = collector.waits;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<double>{0.0, 1.0, 2.0}));

  double engine_wait = 0.0;
  for (const auto& w : engine.metrics().wait_by_class) {
    engine_wait += w.sum();
  }
  EXPECT_DOUBLE_EQ(engine_wait, 3.0);
}

TEST(Observer, DetachWorks) {
  const Torus torus(Shape{4, 4});
  sim::Rng rng(32);
  auto policy = core::make_policy(torus, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, torus, *policy, rng);
  PathValidator validator(torus);
  engine.set_observer(&validator);
  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  sim.run();
  const auto seen = validator.completed();
  EXPECT_EQ(seen, 1u);
  engine.set_observer(nullptr);
  engine.create_task(net::TaskKind::kBroadcast, 1, 1, 1);
  sim.run();
  EXPECT_EQ(validator.completed(), seen);  // no further callbacks
}

}  // namespace
}  // namespace pstar
