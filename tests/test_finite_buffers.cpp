// Finite per-link queues: admission, tail-drop vs push-out eviction, and
// exact loss accounting (dropped subtrees partition the receptions that
// never happen).

#include <gtest/gtest.h>

#include "pstar/core/policy_factory.hpp"
#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/net/overload_hook.hpp"
#include "pstar/routing/sdc_broadcast.hpp"
#include "pstar/routing/star_probabilities.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar::net {
namespace {

using topo::Dir;
using topo::Shape;
using topo::Torus;

class NullPolicy : public RoutingPolicy {
 public:
  void on_task(Engine&, TaskId, topo::NodeId) override {}
  void on_receive(Engine&, topo::NodeId, const Copy&) override {}
};

Copy copy_for(TaskId task, Priority prio) {
  Copy c;
  c.task = task;
  c.prio = prio;
  return c;
}

/// Sheds every copy of one class at the door (docs/OVERLOAD.md); lets
/// the finite-buffer tests exercise the hook seam without a controller.
class StubShedHook : public OverloadHook {
 public:
  explicit StubShedHook(Priority victim) : victim_(victim) {}
  bool should_shed(const Engine&, const Copy& copy, topo::LinkId) override {
    return copy.prio == victim_;
  }

 private:
  Priority victim_;
};

TEST(FiniteBuffers, TailDropRejectsBeyondCapacity) {
  EngineConfig cfg;
  cfg.queue_capacity = 2;
  const Torus torus(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(1);
  NullPolicy policy;
  Engine engine(sim, torus, policy, rng, cfg);
  const TaskId id = engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  // One in service + two queued fit; the fourth is dropped.
  for (int i = 0; i < 4; ++i) {
    engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  }
  EXPECT_EQ(engine.metrics().drops_by_class[0], 1u);
  EXPECT_EQ(engine.inflight_copies(), 3u);
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions, 3u);
}

TEST(FiniteBuffers, ServiceSlotDoesNotCountAgainstCapacity) {
  EngineConfig cfg;
  cfg.queue_capacity = 1;
  const Torus torus(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(2);
  NullPolicy policy;
  Engine engine(sim, torus, policy, rng, cfg);
  const TaskId id = engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // serving
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // queued
  EXPECT_EQ(engine.metrics().drops_by_class[0], 0u);
}

TEST(FiniteBuffers, PushOutEvictsLowerClassVictim) {
  EngineConfig cfg;
  cfg.queue_capacity = 1;
  cfg.drop_policy = DropPolicy::kPushOutLow;
  const Torus torus(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(3);
  NullPolicy policy;
  Engine engine(sim, torus, policy, rng, cfg);
  const TaskId id = engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));   // serving
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));   // queued
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // evicts
  EXPECT_EQ(engine.metrics().drops_by_class[2], 1u);  // the LOW victim
  EXPECT_EQ(engine.metrics().drops_by_class[0], 0u);
  sim.run();
  // Serving LOW + the HIGH that replaced the queued LOW.
  EXPECT_EQ(engine.metrics().transmissions_by_class[0], 1u);
  EXPECT_EQ(engine.metrics().transmissions_by_class[2], 1u);
}

TEST(FiniteBuffers, PushOutWithoutVictimDropsArrival) {
  EngineConfig cfg;
  cfg.queue_capacity = 1;
  cfg.drop_policy = DropPolicy::kPushOutLow;
  const Torus torus(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(4);
  NullPolicy policy;
  Engine engine(sim, torus, policy, rng, cfg);
  const TaskId id = engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // serving
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // queued
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));   // no victim
  EXPECT_EQ(engine.metrics().drops_by_class[2], 1u);
  // An equal-class arrival cannot evict either.
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  EXPECT_EQ(engine.metrics().drops_by_class[0], 1u);
}

TEST(FiniteBuffers, ShedderComposesWithPushOut) {
  // The overload hook sheds at the door, BEFORE finite-buffer admission;
  // push-out eviction happens at admission.  The two must compose per
  // class: MEDIUM shed by the hook, the queued LOW evicted by the HIGH
  // arrival, and shed counters separate from eviction drops.
  EngineConfig cfg;
  cfg.queue_capacity = 1;
  cfg.drop_policy = DropPolicy::kPushOutLow;
  const Torus torus(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(9);
  NullPolicy policy;
  Engine engine(sim, torus, policy, rng, cfg);
  StubShedHook hook(Priority::kMedium);
  engine.set_overload(&hook);
  const TaskId id = engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));     // serving
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));     // queued
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kMedium));  // shed
  EXPECT_EQ(engine.metrics().shed_copies_by_class[1], 1u);
  // The shed is charged through the drop machinery (it IS a drop)...
  EXPECT_EQ(engine.metrics().drops_by_class[1], 1u);
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));    // evicts
  // ...but a push-out eviction is NOT a shed.
  EXPECT_EQ(engine.metrics().drops_by_class[2], 1u);
  EXPECT_EQ(engine.metrics().shed_copies_by_class[2], 0u);
  EXPECT_EQ(engine.metrics().shed_copies_by_class[0], 0u);
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions_by_class[0], 1u);
  EXPECT_EQ(engine.metrics().transmissions_by_class[2], 1u);
  engine.set_overload(nullptr);
}

TEST(FiniteBuffers, DetachedShedHookIsInert) {
  EngineConfig cfg;
  cfg.queue_capacity = 1;
  cfg.drop_policy = DropPolicy::kPushOutLow;
  const Torus torus(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(10);
  NullPolicy policy;
  Engine engine(sim, torus, policy, rng, cfg);
  StubShedHook hook(Priority::kMedium);
  engine.set_overload(&hook);
  engine.set_overload(nullptr);  // detached before any traffic
  const TaskId id = engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kMedium));
  EXPECT_EQ(engine.metrics().shed_copies_by_class[1], 0u);
  EXPECT_EQ(engine.metrics().drops_by_class[1], 0u);
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions_by_class[1], 1u);
}

TEST(FiniteBuffers, SubtreeAccountingIsExact) {
  // Run a real broadcast workload with tiny buffers; delivered + lost
  // receptions must exactly partition (N-1) x completed tasks.
  const Torus torus(Shape{5, 5});
  sim::Rng rng(5);
  auto policy = core::make_policy(torus, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  EngineConfig cfg;
  cfg.queue_capacity = 2;
  Engine engine(sim, torus, *policy, rng, cfg);
  // All 40 broadcasts burst from the same source: its four outgoing
  // links overflow immediately, so early-phase copies (large subtrees)
  // are among the drops.
  for (int burst = 0; burst < 40; ++burst) {
    engine.create_task(TaskKind::kBroadcast, 12, 0, 1);
  }
  sim.run();
  const Metrics& m = engine.metrics();
  EXPECT_GT(m.lost_receptions, 0u);  // tiny buffers under a burst must drop
  EXPECT_EQ(m.tasks_completed[0], 40u);  // lifecycle completes even if failed
  EXPECT_EQ(m.broadcast_receptions + m.lost_receptions, 40u * 24u);
  EXPECT_GT(m.failed_broadcasts, 0u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(FiniteBuffers, UnicastDropFailsTheTask) {
  const Torus torus(Shape{8});
  sim::Rng rng(6);
  auto policy = core::make_policy(torus, core::Scheme::priority_star(), 0.0, 1.0);
  sim::Simulator sim;
  EngineConfig cfg;
  cfg.queue_capacity = 1;
  Engine engine(sim, torus, *policy, rng, cfg);
  // Saturate one link with a burst of unicasts all crossing it.
  for (int i = 0; i < 6; ++i) {
    engine.create_task(TaskKind::kUnicast, 0, 2, 1);
  }
  sim.run();
  const Metrics& m = engine.metrics();
  // Deterministic: one copy in service, one queued, four dropped; every
  // task's lifecycle completes (failed tasks count as completed too).
  EXPECT_EQ(m.failed_unicasts, 4u);
  EXPECT_EQ(m.tasks_completed[1], 6u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(FiniteBuffers, HarnessReportsLossMetrics) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.rho = 0.9;
  spec.warmup = 200.0;
  spec.measure = 1000.0;
  spec.seed = 7;
  spec.queue_capacity = 4;
  const auto r = harness::run_experiment(spec);
  EXPECT_GT(r.drops, 0u);
  EXPECT_GT(r.lost_receptions, 0u);
  EXPECT_LT(r.delivered_fraction, 1.0);
  EXPECT_GT(r.delivered_fraction, 0.8);
  EXPECT_GT(r.failed_broadcasts, 0u);
}

TEST(FiniteBuffers, PushOutProtectsTreeTraffic) {
  // With push-out, losses migrate to the LOW class; lost receptions per
  // drop approach 1 (ending-dimension leaf subtrees).
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.rho = 0.95;
  spec.warmup = 300.0;
  spec.measure = 2000.0;
  spec.seed = 8;
  spec.queue_capacity = 4;

  spec.scheme = core::Scheme::star_fcfs();
  spec.drop_policy = net::DropPolicy::kTailDrop;
  const auto fcfs = harness::run_experiment(spec);

  spec.scheme = core::Scheme::priority_star();
  spec.drop_policy = net::DropPolicy::kPushOutLow;
  const auto pushout = harness::run_experiment(spec);

  ASSERT_GT(fcfs.drops, 0u);
  ASSERT_GT(pushout.drops, 0u);
  const double fcfs_lpd = static_cast<double>(fcfs.lost_receptions) /
                          static_cast<double>(fcfs.drops);
  const double push_lpd = static_cast<double>(pushout.lost_receptions) /
                          static_cast<double>(pushout.drops);
  EXPECT_LT(push_lpd, fcfs_lpd);
  EXPECT_GT(pushout.delivered_fraction, fcfs.delivered_fraction);
  // Push-out drops land (almost) entirely on the LOW class.
  EXPECT_GT(pushout.drops_by_class[2], pushout.drops_by_class[0]);
}

TEST(FiniteBuffers, UnboundedByDefault) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.rho = 0.9;
  spec.warmup = 200.0;
  spec.measure = 800.0;
  const auto r = harness::run_experiment(spec);
  EXPECT_EQ(r.drops, 0u);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
}

}  // namespace
}  // namespace pstar::net
