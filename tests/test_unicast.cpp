#include "pstar/routing/unicast.hpp"

#include <gtest/gtest.h>

#include "pstar/net/engine.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar::routing {
namespace {

using topo::Shape;
using topo::Torus;

struct UnicastFixture {
  explicit UnicastFixture(Shape shape, UnicastConfig cfg = {})
      : torus(std::move(shape)),
        rng(11),
        policy(torus, cfg),
        engine(sim, torus, policy, rng) {}

  void route(topo::NodeId from, topo::NodeId to) {
    engine.create_task(net::TaskKind::kUnicast, from, to, 1);
  }

  sim::Simulator sim;
  Torus torus;
  sim::Rng rng;
  UnicastPolicy policy;
  net::Engine engine;
};

TEST(Unicast, DeliversAtExactShortestDistance) {
  UnicastFixture f(Shape{5, 5});
  f.engine.begin_measurement();
  const topo::NodeId from = f.torus.shape().index_of({0, 0});
  const topo::NodeId to = f.torus.shape().index_of({2, 4});
  f.route(from, to);
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.tasks_completed[1], 1u);
  // Shortest path: 2 hops in dim 0, 1 hop (wraparound) in dim 1.
  EXPECT_DOUBLE_EQ(m.unicast_delay.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.unicast_hops.mean(), 3.0);
}

TEST(Unicast, WraparoundIsUsedWhenShorter) {
  UnicastFixture f(Shape{8});
  f.engine.begin_measurement();
  f.route(0, 7);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.engine.metrics().unicast_delay.mean(), 1.0);
}

TEST(Unicast, ZeroDistanceSelfDeliveryCompletesWithoutHops) {
  UnicastFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  f.route(5, 5);
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.tasks_completed[1], 1u);
  EXPECT_DOUBLE_EQ(m.unicast_delay.mean(), 0.0);
  EXPECT_EQ(m.transmissions, 0u);
}

TEST(Unicast, AllPairsDeliverAtShortestDistance) {
  UnicastFixture f(Shape{4, 3});
  for (topo::NodeId a = 0; a < f.torus.node_count(); ++a) {
    for (topo::NodeId b = 0; b < f.torus.node_count(); ++b) {
      if (a == b) continue;
      sim::Simulator sim;
      sim::Rng rng(17);
      UnicastPolicy policy(f.torus, UnicastConfig{});
      net::Engine engine(sim, f.torus, policy, rng);
      engine.begin_measurement();
      engine.create_task(net::TaskKind::kUnicast, a, b, 1);
      sim.run();
      double dist = 0.0;
      for (std::int32_t dim = 0; dim < f.torus.dims(); ++dim) {
        dist += topo::ring_distance(f.torus.shape().coord_of(a, dim),
                                    f.torus.shape().coord_of(b, dim),
                                    f.torus.shape().size(dim));
      }
      ASSERT_DOUBLE_EQ(engine.metrics().unicast_delay.mean(), dist)
          << a << "->" << b;
    }
  }
}

TEST(Unicast, EvenRingTieUsesBothDirections) {
  // Offset exactly n/2: over many packets both + and - links of the tied
  // dimension must carry traffic.
  const Torus torus(Shape{8});
  sim::Simulator sim;
  sim::Rng rng(23);
  UnicastPolicy policy(torus, UnicastConfig{});
  net::Engine engine(sim, torus, policy, rng);
  engine.begin_measurement();
  for (int i = 0; i < 200; ++i) {
    engine.create_task(net::TaskKind::kUnicast, 0, 4, 1);
    sim.run();
  }
  engine.end_measurement();
  const topo::LinkId plus = torus.link(0, 0, topo::Dir::kPlus);
  const topo::LinkId minus = torus.link(0, 0, topo::Dir::kMinus);
  const auto& tx = engine.metrics().link_transmissions;
  EXPECT_GT(tx[static_cast<std::size_t>(plus)], 60u);
  EXPECT_GT(tx[static_cast<std::size_t>(minus)], 60u);
  EXPECT_EQ(tx[static_cast<std::size_t>(plus)] +
                tx[static_cast<std::size_t>(minus)],
            200u);
}

TEST(Unicast, AscendingOrderRoutesDimensionZeroFirst) {
  UnicastFixture f(Shape{4, 4}, UnicastConfig{net::Priority::kHigh,
                                              DimOrder::kAscending});
  f.engine.begin_measurement();
  const topo::NodeId from = f.torus.shape().index_of({0, 0});
  const topo::NodeId to = f.torus.shape().index_of({1, 1});
  f.route(from, to);
  f.sim.run();
  f.engine.end_measurement();
  // With ascending order the first hop is on dimension 0 from the source.
  const topo::LinkId first = f.torus.link(from, 0, topo::Dir::kPlus);
  EXPECT_EQ(f.engine.metrics().link_transmissions[static_cast<std::size_t>(
                first)],
            1u);
}

TEST(Unicast, RandomOrderStillDeliversShortest) {
  UnicastFixture f(Shape{5, 5, 5},
                   UnicastConfig{net::Priority::kHigh, DimOrder::kRandom});
  f.engine.begin_measurement();
  const topo::NodeId from = f.torus.shape().index_of({0, 0, 0});
  const topo::NodeId to = f.torus.shape().index_of({2, 3, 1});
  f.route(from, to);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.engine.metrics().unicast_delay.mean(), 2.0 + 2.0 + 1.0);
}

TEST(Unicast, AdaptiveAvoidsTheLoadedDimension) {
  // Pre-load the dimension-0 link out of the source; an adaptive unicast
  // with both dimensions productive must take its first hop on dim 1.
  UnicastFixture f(Shape{4, 4},
                   UnicastConfig{net::Priority::kHigh, DimOrder::kAdaptive});
  const topo::NodeId from = f.torus.shape().index_of({0, 0});
  const topo::NodeId to = f.torus.shape().index_of({1, 1});
  // Jam the dim-0 + link with an unmeasured unicast heading that way.
  f.route(from, f.torus.shape().index_of({1, 0}));

  f.engine.begin_measurement();
  f.route(from, to);
  f.sim.run();
  f.engine.end_measurement();
  // First hop went up dimension 1 (the empty link); delay is exactly 2
  // because neither chosen link ever queues behind the jam.
  EXPECT_DOUBLE_EQ(f.engine.metrics().unicast_delay.mean(), 2.0);
  const topo::LinkId dim1 = f.torus.link(from, 1, topo::Dir::kPlus);
  EXPECT_EQ(
      f.engine.metrics().link_transmissions[static_cast<std::size_t>(dim1)],
      1u);
}

TEST(Unicast, AdaptiveStillDeliversShortestPaths) {
  UnicastFixture f(Shape{5, 5, 5},
                   UnicastConfig{net::Priority::kHigh, DimOrder::kAdaptive});
  f.engine.begin_measurement();
  const topo::NodeId from = f.torus.shape().index_of({0, 0, 0});
  const topo::NodeId to = f.torus.shape().index_of({2, 4, 1});
  f.route(from, to);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.engine.metrics().unicast_hops.mean(), 2.0 + 1.0 + 1.0);
}

TEST(Unicast, HypercubeRouting) {
  UnicastFixture f(Shape::hypercube(5));
  f.engine.begin_measurement();
  f.route(0, 0b10110);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.engine.metrics().unicast_delay.mean(), 3.0);  // popcount
}

TEST(Unicast, UsesConfiguredPriorityClass) {
  UnicastFixture f(Shape{4, 4},
                   UnicastConfig{net::Priority::kMedium, DimOrder::kAscending});
  f.engine.begin_measurement();
  f.route(0, 1);
  f.sim.run();
  EXPECT_EQ(f.engine.metrics().transmissions_by_class[1], 1u);
}

}  // namespace
}  // namespace pstar::routing
