// CalendarQueue-specific tests: randomized differential fuzzing against
// a std::priority_queue reference model, FIFO tie stability across
// bucket machinery, far-future / non-finite overflow handling, and
// bucket-resize boundaries.  The generic scheduler contract (shared with
// the heap) lives in test_event_queue.cpp; end-to-end equivalence in
// test_scheduler_equivalence.cpp.

#include "pstar/sim/calendar_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <queue>
#include <utility>
#include <vector>

#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar::sim {
namespace {

// Reference model: (time, seq) min-queue with the exact ordering
// contract the schedulers promise -- earlier time first, insertion
// order among ties.
class ReferenceQueue {
 public:
  void push(Time t) { q_.emplace(t, next_seq_++); }
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::pair<Time, std::uint64_t> pop() {
    auto top = q_.top();
    q_.pop();
    return top;
  }

 private:
  struct Later {
    bool operator()(const std::pair<Time, std::uint64_t>& a,
                    const std::pair<Time, std::uint64_t>& b) const {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    }
  };
  std::priority_queue<std::pair<Time, std::uint64_t>,
                      std::vector<std::pair<Time, std::uint64_t>>, Later>
      q_;
  std::uint64_t next_seq_ = 0;
};

TEST(CalendarQueue, RejectsNonPositiveWidth) {
  EXPECT_THROW(CalendarQueue(0.0), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(-1.0), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW(CalendarQueue(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

// The workhorse: many seeds, each driving an interleaved push/pop
// workload through the calendar and the reference side by side; every
// popped (time, payload-written seq) must match the reference exactly.
// The time distribution mixes same-instant bursts (broadcast
// wavefronts), short forward jumps (service completions), long jumps
// (idle gaps that make the cursor walk years), and occasional rewinds
// to just above the last popped time.
TEST(CalendarQueue, DifferentialFuzzAgainstReference) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    CalendarQueue cal;
    ReferenceQueue ref;
    Rng rng(seed);
    Simulator dummy;
    double now = 0.0;
    double burst_time = 0.0;
    std::uint64_t push_count = 0;
    for (int step = 0; step < 5000; ++step) {
      const bool do_push = cal.empty() || rng.bernoulli(0.55);
      if (do_push) {
        double t;
        const double r = rng.uniform();
        if (r < 0.35) {
          t = burst_time;  // same-instant burst: exercises FIFO ties
        } else if (r < 0.80) {
          t = now + rng.uniform() * 2.0;  // near-future, the common case
        } else if (r < 0.95) {
          t = now + rng.uniform() * 500.0;  // beyond one calendar year
        } else {
          t = now;  // schedule exactly at "now" (a rewind candidate)
        }
        if (rng.bernoulli(0.1)) burst_time = t;
        const std::uint64_t tag = push_count++;
        cal.push(t, [tag](Simulator&) { (void)tag; });
        ref.push(t);
      } else {
        ASSERT_EQ(cal.size(), ref.size());
        const auto expected = ref.pop();
        EXPECT_EQ(cal.next_time(), expected.first) << "seed " << seed;
        auto [t, fn] = cal.pop();
        EXPECT_EQ(t, expected.first) << "seed " << seed << " step " << step;
        now = t;
        burst_time = std::max(burst_time, now);
      }
    }
    // Drain: the tail must come out in exact reference order too.
    while (!ref.empty()) {
      const auto expected = ref.pop();
      auto [t, fn] = cal.pop();
      EXPECT_EQ(t, expected.first) << "seed " << seed;
    }
    EXPECT_TRUE(cal.empty());
  }
}

TEST(CalendarQueue, FifoStabilityAcrossBuckets) {
  // Same-time events pushed before, between, and after unrelated events
  // in other buckets must still fire in insertion order.
  CalendarQueue cal;
  std::vector<int> order;
  Simulator dummy;
  cal.push(5.5, [&order](Simulator&) { order.push_back(0); });
  cal.push(2.0, [](Simulator&) {});
  cal.push(5.5, [&order](Simulator&) { order.push_back(1); });
  cal.push(9.0, [](Simulator&) {});
  cal.push(5.5, [&order](Simulator&) { order.push_back(2); });
  while (!cal.empty()) cal.pop().second(dummy);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CalendarQueue, MassiveSameInstantBurst) {
  // A 64^3 broadcast wavefront schedules thousands of events at one
  // instant; they must drain in insertion order without quadratic
  // behaviour (sorted-run appends, head-cursor pops).
  CalendarQueue cal;
  Simulator dummy;
  std::vector<int> order;
  order.reserve(5000);
  for (int i = 0; i < 5000; ++i) {
    cal.push(3.0, [&order, i](Simulator&) { order.push_back(i); });
  }
  while (!cal.empty()) cal.pop().second(dummy);
  ASSERT_EQ(order.size(), 5000u);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(CalendarQueue, FarFutureEventsGoToOverflow) {
  CalendarQueue cal;
  cal.push(1e300, [](Simulator&) {});
  cal.push(std::numeric_limits<double>::infinity(), [](Simulator&) {});
  EXPECT_EQ(cal.overflow_size(), 2u);
  cal.push(1.0, [](Simulator&) {});
  EXPECT_EQ(cal.size(), 3u);
  // Calendar entries drain first; overflow strictly after.
  EXPECT_DOUBLE_EQ(cal.next_time(), 1.0);
  EXPECT_DOUBLE_EQ(cal.pop().first, 1.0);
  EXPECT_DOUBLE_EQ(cal.pop().first, 1e300);
  EXPECT_TRUE(std::isinf(cal.pop().first));
  EXPECT_TRUE(cal.empty());
}

TEST(CalendarQueue, OverflowBoundaryIsExact) {
  // Times straddling the 2^62 virtual-day boundary: below stays in the
  // calendar, at or above goes to overflow, and ordering holds across
  // the boundary.
  CalendarQueue cal(1.0);
  const double boundary = 4611686018427387904.0;  // 2^62 days at width 1
  cal.push(boundary, [](Simulator&) {});
  EXPECT_EQ(cal.overflow_size(), 1u);
  cal.push(boundary * 0.5, [](Simulator&) {});
  EXPECT_EQ(cal.overflow_size(), 1u);
  EXPECT_DOUBLE_EQ(cal.pop().first, boundary * 0.5);
  EXPECT_DOUBLE_EQ(cal.pop().first, boundary);
}

TEST(CalendarQueue, SentinelTimerPattern) {
  // The engine's idle-timer idiom: a huge sentinel parked forever while
  // real events churn in front of it.  The sentinel must neither block
  // nor reorder anything.
  CalendarQueue cal;
  ReferenceQueue ref;
  cal.push(1e18, [](Simulator&) {});
  ref.push(1e18);
  Rng rng(7);
  double now = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = now + rng.uniform();
    cal.push(t, [](Simulator&) {});
    ref.push(t);
    if (rng.bernoulli(0.5)) {
      const auto expected = ref.pop();
      auto [got, fn] = cal.pop();
      EXPECT_EQ(got, expected.first);
      now = got;
    }
  }
  while (!ref.empty()) {
    EXPECT_EQ(cal.pop().first, ref.pop().first);
  }
}

TEST(CalendarQueue, GrowsAndShrinksAcrossThresholds) {
  // Push far past the grow threshold, then drain past the shrink
  // threshold; ordering must hold across every resize, and the bucket
  // count must actually move both ways.
  CalendarQueue cal;
  const std::size_t initial_buckets = cal.bucket_count();
  Rng rng(13);
  std::vector<double> times;
  for (int i = 0; i < 4000; ++i) {
    const double t = rng.uniform() * 100.0;
    times.push_back(t);
    cal.push(t, [](Simulator&) {});
  }
  EXPECT_GT(cal.bucket_count(), initial_buckets);
  std::sort(times.begin(), times.end());
  std::size_t max_buckets = cal.bucket_count();
  for (double expected : times) {
    EXPECT_EQ(cal.pop().first, expected);
  }
  EXPECT_TRUE(cal.empty());
  EXPECT_LT(cal.bucket_count(), max_buckets);  // shrank while draining
}

TEST(CalendarQueue, ResizeBoundaryKeepsOrderAroundThreshold) {
  // Hover the population exactly around the grow threshold so resize
  // fires repeatedly, with times chosen to land on bucket edges
  // (integers at width 1.0) -- the rounding-sensitive spots.
  CalendarQueue cal(1.0);
  ReferenceQueue ref;
  Rng rng(29);
  double now = 0.0;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 80; ++i) {
      // Half the times are exact integers (bucket edges).
      double t = now + rng.uniform() * 40.0;
      if (rng.bernoulli(0.5)) t = std::floor(t);
      if (t < now) t = now;
      cal.push(t, [](Simulator&) {});
      ref.push(t);
    }
    for (int i = 0; i < 78; ++i) {
      const auto expected = ref.pop();
      auto [t, fn] = cal.pop();
      ASSERT_EQ(t, expected.first) << "cycle " << cycle;
      now = t;
    }
  }
  while (!ref.empty()) {
    EXPECT_EQ(cal.pop().first, ref.pop().first);
  }
}

TEST(CalendarQueue, NonUnitWidths) {
  // The backend is width-agnostic; sanity-check a coarse and a fine
  // calendar against the reference on one workload.
  for (double width : {0.125, 7.3}) {
    CalendarQueue cal(width);
    ReferenceQueue ref;
    Rng rng(31);
    double now = 0.0;
    for (int i = 0; i < 2000; ++i) {
      if (cal.empty() || rng.bernoulli(0.55)) {
        const double t = now + rng.uniform() * 20.0;
        cal.push(t, [](Simulator&) {});
        ref.push(t);
      } else {
        const auto expected = ref.pop();
        auto [t, fn] = cal.pop();
        ASSERT_EQ(t, expected.first) << "width " << width;
        now = t;
      }
    }
  }
}

TEST(CalendarQueue, ClearResetsToInitialShape) {
  CalendarQueue cal;
  for (int i = 0; i < 1000; ++i) {
    cal.push(static_cast<double>(i) * 0.1, [](Simulator&) {});
  }
  cal.push(1e30, [](Simulator&) {});
  cal.clear();
  EXPECT_TRUE(cal.empty());
  EXPECT_EQ(cal.size(), 0u);
  EXPECT_EQ(cal.overflow_size(), 0u);
  // Reusable after clear, including an event before the old cursor.
  cal.push(0.05, [](Simulator&) {});
  EXPECT_DOUBLE_EQ(cal.next_time(), 0.05);
}

TEST(CalendarQueue, RewindBeforeCursorDay) {
  // Drain to a late day, then push an event on an EARLIER day (allowed:
  // the simulator schedules at now or later, and "now" can sit mid-day
  // behind the cursor after a pop).  The cursor must rewind.
  CalendarQueue cal(1.0);
  cal.push(100.7, [](Simulator&) {});
  EXPECT_DOUBLE_EQ(cal.pop().first, 100.7);  // cursor now on day 100
  cal.push(100.2, [](Simulator&) {});        // same day, earlier time
  cal.push(50.5, [](Simulator&) {});         // EARLIER day: forces rewind
  EXPECT_DOUBLE_EQ(cal.next_time(), 50.5);
  EXPECT_DOUBLE_EQ(cal.pop().first, 50.5);
  EXPECT_DOUBLE_EQ(cal.pop().first, 100.2);
  EXPECT_TRUE(cal.empty());
}

}  // namespace
}  // namespace pstar::sim
