// BatchRunner contract tests: bit-identical results regardless of
// thread count, exact agreement with a serial run_experiment loop over
// the same derived seeds, failure isolation, jobs resolution, progress
// reporting, and (on machines with enough cores) parallel speedup.

#include "pstar/harness/batch_runner.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "pstar/harness/experiment.hpp"
#include "pstar/sim/rng.hpp"

namespace pstar::harness {
namespace {

/// A small but non-trivial sweep: 3 points on a 4x4 torus at distinct
/// loads, fast enough to replicate 4x under several thread counts.
std::vector<ExperimentSpec> three_point_sweep() {
  std::vector<ExperimentSpec> specs;
  for (double rho : {0.3, 0.5, 0.7}) {
    ExperimentSpec spec;
    spec.shape = topo::Shape{4, 4};
    spec.rho = rho;
    spec.warmup = 100.0;
    spec.measure = 400.0;
    spec.seed = 4242;
    spec.record_histograms = true;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Field-exact equality over everything BatchRunner promises to keep
/// bit-identical: every simulation output EXCEPT the host-timing fields
/// (wall_seconds, events_per_sec), which measure the machine.
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.reception_delay_mean, b.reception_delay_mean);
  EXPECT_DOUBLE_EQ(a.reception_delay_ci95, b.reception_delay_ci95);
  EXPECT_DOUBLE_EQ(a.broadcast_delay_mean, b.broadcast_delay_mean);
  EXPECT_DOUBLE_EQ(a.broadcast_delay_ci95, b.broadcast_delay_ci95);
  EXPECT_DOUBLE_EQ(a.unicast_delay_mean, b.unicast_delay_mean);
  EXPECT_DOUBLE_EQ(a.reception_p50, b.reception_p50);
  EXPECT_DOUBLE_EQ(a.reception_p95, b.reception_p95);
  EXPECT_DOUBLE_EQ(a.reception_p99, b.reception_p99);
  EXPECT_DOUBLE_EQ(a.utilization_mean, b.utilization_mean);
  EXPECT_DOUBLE_EQ(a.utilization_max, b.utilization_max);
  EXPECT_DOUBLE_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.measured_broadcasts, b.measured_broadcasts);
  EXPECT_EQ(a.measured_unicasts, b.measured_unicasts);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.unstable, b.unstable);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.ending_probabilities, b.ending_probabilities);
}

void expect_identical(const ReplicatedResult& a, const ReplicatedResult& b) {
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    expect_identical(a.runs[i], b.runs[i]);
  }
  EXPECT_DOUBLE_EQ(a.reception_delay_mean, b.reception_delay_mean);
  EXPECT_DOUBLE_EQ(a.reception_delay_sd, b.reception_delay_sd);
  EXPECT_DOUBLE_EQ(a.reception_delay_ci95_rep, b.reception_delay_ci95_rep);
  EXPECT_DOUBLE_EQ(a.reception_delay_ci95_within,
                   b.reception_delay_ci95_within);
  EXPECT_EQ(a.stable_runs, b.stable_runs);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(BatchRunner, ThreadCountDoesNotChangeResults) {
  const auto specs = three_point_sweep();
  BatchConfig serial;
  serial.jobs = 1;
  serial.replications = 4;
  BatchConfig parallel;
  parallel.jobs = 8;
  parallel.replications = 4;

  const BatchResult one = BatchRunner(serial).run(specs);
  const BatchResult eight = BatchRunner(parallel).run(specs);

  ASSERT_EQ(one.points.size(), specs.size());
  ASSERT_EQ(eight.points.size(), specs.size());
  EXPECT_TRUE(one.failures.empty());
  EXPECT_TRUE(eight.failures.empty());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    expect_identical(one.points[p], eight.points[p]);
  }
  EXPECT_EQ(one.events_processed, eight.events_processed);
}

TEST(BatchRunner, MatchesSerialRunExperimentLoop) {
  const auto specs = three_point_sweep();
  const std::size_t reps = 4;
  BatchConfig config;
  config.jobs = 8;
  config.replications = reps;
  const BatchResult batch = BatchRunner(config).run(specs);

  ASSERT_EQ(batch.points.size(), specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    ASSERT_EQ(batch.points[p].runs.size(), reps);
    for (std::size_t r = 0; r < reps; ++r) {
      ExperimentSpec cell = specs[p];
      cell.seed = sim::seed_stream(specs[p].seed, p, r);
      expect_identical(batch.points[p].runs[r], run_experiment(cell));
    }
  }
}

TEST(BatchRunner, MatchesRunReplicated) {
  // A one-point batch must use the exact seeds run_replicated documents,
  // so the two entry points are interchangeable.
  ExperimentSpec spec;
  spec.shape = topo::Shape{4, 4};
  spec.rho = 0.5;
  spec.warmup = 100.0;
  spec.measure = 400.0;
  spec.seed = 99;

  BatchConfig config;
  config.jobs = 4;
  config.replications = 3;
  const BatchResult batch = BatchRunner(config).run({spec});
  ASSERT_EQ(batch.points.size(), 1u);
  expect_identical(batch.points.front(), run_replicated(spec, 3));
}

TEST(BatchRunner, RunCellsPreservesInputOrder) {
  const auto specs = three_point_sweep();
  BatchConfig config;
  config.jobs = 8;
  const auto cells = BatchRunner(config).run_cells(specs);
  ASSERT_EQ(cells.size(), specs.size());
  for (std::size_t p = 0; p < specs.size(); ++p) {
    ExperimentSpec serial = specs[p];
    serial.seed = sim::seed_stream(specs[p].seed, p, 0);
    expect_identical(cells[p], run_experiment(serial));
  }
  // Higher rho -> strictly more delay on the same topology; order held.
  EXPECT_LT(cells[0].reception_delay_mean, cells[2].reception_delay_mean);
}

TEST(BatchRunner, FailingCellDoesNotPoisonBatch) {
  auto specs = three_point_sweep();
  specs[1].warmup = -1.0;  // run_experiment throws std::invalid_argument
  BatchConfig config;
  config.jobs = 4;
  config.replications = 2;
  const BatchResult batch = BatchRunner(config).run(specs);

  ASSERT_EQ(batch.failures.size(), 2u);  // both replications of point 1
  EXPECT_EQ(batch.failures[0].point, 1u);
  EXPECT_EQ(batch.failures[0].replication, 0u);
  EXPECT_EQ(batch.failures[1].replication, 1u);
  EXPECT_FALSE(batch.failures[0].message.empty());
  // The failing cell's derived seed is preserved for reproduction.
  EXPECT_EQ(batch.failures[0].spec.seed, sim::seed_stream(4242, 1, 0));

  // The healthy points still aggregate normally.
  ASSERT_EQ(batch.points.size(), 3u);
  EXPECT_EQ(batch.points[0].stable_runs, 2u);
  EXPECT_EQ(batch.points[1].stable_runs, 0u);
  EXPECT_TRUE(batch.points[1].runs.empty());
  EXPECT_EQ(batch.points[2].stable_runs, 2u);
}

TEST(BatchRunner, RunCellsThrowsOnFailure) {
  auto specs = three_point_sweep();
  specs[2].measure = 0.0;
  BatchConfig config;
  config.jobs = 2;
  EXPECT_THROW(BatchRunner(config).run_cells(specs), std::runtime_error);
}

TEST(BatchRunner, EmptyBatch) {
  const BatchResult batch = BatchRunner().run({});
  EXPECT_TRUE(batch.points.empty());
  EXPECT_TRUE(batch.failures.empty());
  EXPECT_EQ(batch.events_processed, 0u);
}

TEST(BatchRunner, ProgressReportsEveryCell) {
  const auto specs = three_point_sweep();
  std::vector<std::pair<std::size_t, std::size_t>> ticks;
  BatchConfig config;
  config.jobs = 4;
  config.replications = 2;
  config.progress = [&ticks](std::size_t done, std::size_t total) {
    ticks.emplace_back(done, total);
  };
  BatchRunner(config).run(specs);

  const std::size_t total = specs.size() * 2;
  ASSERT_EQ(ticks.size(), total);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    // The done counter is incremented under the runner's mutex, so the
    // callback sequence is exactly 1..total even with 4 workers.
    EXPECT_EQ(ticks[i].first, i + 1);
    EXPECT_EQ(ticks[i].second, total);
  }
}

TEST(ResolveJobs, ExplicitRequestWins) {
  ::setenv("PSTAR_JOBS", "3", 1);
  EXPECT_EQ(resolve_jobs(5), 5u);
  ::unsetenv("PSTAR_JOBS");
}

TEST(ResolveJobs, EnvironmentOverridesDefault) {
  ::setenv("PSTAR_JOBS", "7", 1);
  EXPECT_EQ(resolve_jobs(), 7u);
  ::unsetenv("PSTAR_JOBS");
}

TEST(ResolveJobs, IgnoresMalformedEnvironment) {
  const std::size_t fallback = resolve_jobs();
  EXPECT_GE(fallback, 1u);
  for (const char* bad : {"", "0", "-2", "lots", "4x"}) {
    ::setenv("PSTAR_JOBS", bad, 1);
    EXPECT_EQ(resolve_jobs(), fallback) << "PSTAR_JOBS=" << bad;
  }
  ::unsetenv("PSTAR_JOBS");
}

TEST(BatchRunner, ConfigJobsOverridesEnvironment) {
  ::setenv("PSTAR_JOBS", "9", 1);
  BatchConfig config;
  config.jobs = 2;
  EXPECT_EQ(BatchRunner(config).jobs(), 2u);
  EXPECT_EQ(BatchRunner().jobs(), 9u);
  ::unsetenv("PSTAR_JOBS");
}

TEST(BatchRunner, ParallelSpeedupOnMulticoreHosts) {
  // The ISSUE's acceptance bar: a 4-point x 4-replication fig2-style
  // sweep with jobs=4 must run >= 2.5x faster than jobs=1 on a 4-core
  // machine, with bit-identical output.  Meaningless on fewer cores.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }

  std::vector<ExperimentSpec> specs;
  for (double rho : {0.3, 0.5, 0.7, 0.85}) {
    ExperimentSpec spec;
    spec.shape = topo::Shape{8, 8};
    spec.rho = rho;
    spec.warmup = 300.0;
    spec.measure = 1500.0;
    spec.seed = 1;
    specs.push_back(std::move(spec));
  }
  BatchConfig serial;
  serial.jobs = 1;
  serial.replications = 4;
  BatchConfig quad;
  quad.jobs = 4;
  quad.replications = 4;

  const BatchResult one = BatchRunner(serial).run(specs);
  const BatchResult four = BatchRunner(quad).run(specs);

  for (std::size_t p = 0; p < specs.size(); ++p) {
    expect_identical(one.points[p], four.points[p]);
  }
  ASSERT_GT(four.wall_seconds, 0.0);
  EXPECT_GE(one.wall_seconds / four.wall_seconds, 2.5)
      << "jobs=1 " << one.wall_seconds << "s vs jobs=4 " << four.wall_seconds
      << "s";
}

}  // namespace
}  // namespace pstar::harness
