// Differential equivalence suite for the two scheduler backends
// (docs/ENGINE.md): every experiment configuration must produce
// BIT-IDENTICAL results under the binary heap (the reference) and the
// calendar queue (the fast default).  Equality here is exact -- every
// deterministic metric compared with ==, plus byte-identical JSONL
// traces -- because the backends' ordering contract (time, then
// insertion order) is exact, not approximate.  A single ulp of drift in
// any metric fails the suite.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "pstar/harness/experiment.hpp"
#include "pstar/obs/trace.hpp"

namespace {

using namespace pstar;
using harness::ExperimentResult;
using harness::ExperimentSpec;

// Runs the spec under one backend.
ExperimentResult run_with(ExperimentSpec spec, sim::SchedulerKind kind) {
  spec.scheduler = kind;
  return harness::run_experiment(spec);
}

// Compares every deterministic field of two results exactly.  The host
// measurements (wall_seconds, events_per_sec, peak_rss_bytes) are the
// only exclusions -- they are documented as outside the bit-identity
// guarantee (experiment.hpp).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.reception_delay_mean, b.reception_delay_mean);
  EXPECT_EQ(a.reception_delay_ci95, b.reception_delay_ci95);
  EXPECT_EQ(a.broadcast_delay_mean, b.broadcast_delay_mean);
  EXPECT_EQ(a.broadcast_delay_ci95, b.broadcast_delay_ci95);
  EXPECT_EQ(a.unicast_delay_mean, b.unicast_delay_mean);
  EXPECT_EQ(a.unicast_delay_ci95, b.unicast_delay_ci95);
  EXPECT_EQ(a.unicast_hops_mean, b.unicast_hops_mean);
  EXPECT_EQ(a.multicast_reception_delay_mean, b.multicast_reception_delay_mean);
  EXPECT_EQ(a.multicast_delay_mean, b.multicast_delay_mean);
  EXPECT_EQ(a.multicast_delay_ci95, b.multicast_delay_ci95);
  EXPECT_EQ(a.reception_p50, b.reception_p50);
  EXPECT_EQ(a.reception_p95, b.reception_p95);
  EXPECT_EQ(a.reception_p99, b.reception_p99);
  EXPECT_EQ(a.broadcast_p95, b.broadcast_p95);
  EXPECT_EQ(a.unicast_p95, b.unicast_p95);
  EXPECT_EQ(a.unicast_p99, b.unicast_p99);
  for (int c = 0; c < net::kPriorityClasses; ++c) {
    EXPECT_EQ(a.wait_mean[c], b.wait_mean[c]) << "class " << c;
    EXPECT_EQ(a.wait_count[c], b.wait_count[c]) << "class " << c;
    EXPECT_EQ(a.drops_by_class[c], b.drops_by_class[c]) << "class " << c;
    EXPECT_EQ(a.shed_by_class[c], b.shed_by_class[c]) << "class " << c;
  }
  EXPECT_EQ(a.utilization_mean, b.utilization_mean);
  EXPECT_EQ(a.utilization_max, b.utilization_max);
  EXPECT_EQ(a.utilization_cv, b.utilization_cv);
  EXPECT_EQ(a.utilization_by_dim, b.utilization_by_dim);
  EXPECT_EQ(a.concurrent_broadcasts, b.concurrent_broadcasts);
  EXPECT_EQ(a.concurrent_unicasts, b.concurrent_unicasts);
  EXPECT_EQ(a.queue_occupancy_mean, b.queue_occupancy_mean);
  EXPECT_EQ(a.queue_occupancy_max, b.queue_occupancy_max);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.lost_receptions, b.lost_receptions);
  EXPECT_EQ(a.failed_broadcasts, b.failed_broadcasts);
  EXPECT_EQ(a.failed_unicasts, b.failed_unicasts);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.link_repairs, b.link_repairs);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.mean_downtime_fraction, b.mean_downtime_fraction);
  EXPECT_EQ(a.downtime_weighted_utilization, b.downtime_weighted_utilization);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.receptions_recovered, b.receptions_recovered);
  EXPECT_EQ(a.tasks_recovered, b.tasks_recovered);
  EXPECT_EQ(a.retries_exhausted, b.retries_exhausted);
  EXPECT_EQ(a.shed_copies, b.shed_copies);
  EXPECT_EQ(a.shed_receptions, b.shed_receptions);
  EXPECT_EQ(a.shed_fraction, b.shed_fraction);
  EXPECT_EQ(a.tasks_throttled, b.tasks_throttled);
  EXPECT_EQ(a.tasks_released, b.tasks_released);
  EXPECT_EQ(a.admission_delay_mean, b.admission_delay_mean);
  EXPECT_EQ(a.sat_transitions, b.sat_transitions);
  EXPECT_EQ(a.time_in_saturation, b.time_in_saturation);
  EXPECT_EQ(a.goodput, b.goodput);
  EXPECT_EQ(a.high_delivered_fraction, b.high_delivered_fraction);
  EXPECT_EQ(a.measured_broadcasts, b.measured_broadcasts);
  EXPECT_EQ(a.measured_unicasts, b.measured_unicasts);
  EXPECT_EQ(a.measured_multicasts, b.measured_multicasts);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.unstable, b.unstable);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.inflight_at_end, b.inflight_at_end);
  EXPECT_EQ(a.balanced_feasible, b.balanced_feasible);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.ending_probabilities, b.ending_probabilities);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

// Runs the spec under both backends and asserts exact equality.
void expect_equivalent(const ExperimentSpec& spec) {
  const ExperimentResult heap = run_with(spec, sim::SchedulerKind::kHeap);
  const ExperimentResult cal = run_with(spec, sim::SchedulerKind::kCalendar);
  expect_identical(heap, cal);
}

// Small windows keep each cell fast; every cell still runs tens of
// thousands of events through the full engine.
ExperimentSpec base_spec() {
  ExperimentSpec spec;
  spec.shape = topo::Shape{8, 8};
  spec.rho = 0.7;
  spec.warmup = 100.0;
  spec.measure = 400.0;
  spec.seed = 42;
  return spec;
}

TEST(SchedulerEquivalence, Broadcast2DTorus) { expect_equivalent(base_spec()); }

TEST(SchedulerEquivalence, Broadcast3DTorus) {
  ExperimentSpec spec = base_spec();
  spec.shape = topo::Shape{4, 4, 4};
  spec.rho = 0.8;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, Mesh) {
  ExperimentSpec spec = base_spec();
  spec.mesh = true;
  spec.rho = 0.35;  // mesh broadcast saturates near 0.5
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, FcfsDirectScheme) {
  ExperimentSpec spec = base_spec();
  spec.scheme = core::Scheme::fcfs_direct();
  spec.rho = 0.5;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, StarFcfsScheme) {
  ExperimentSpec spec = base_spec();
  spec.scheme = core::Scheme::star_fcfs();
  spec.rho = 0.5;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, MixedTrafficWithHistograms) {
  ExperimentSpec spec = base_spec();
  spec.broadcast_fraction = 0.5;
  spec.record_histograms = true;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, MulticastMix) {
  ExperimentSpec spec = base_spec();
  spec.broadcast_fraction = 0.4;
  spec.multicast_fraction = 0.3;
  spec.multicast_group = 6;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, GeometricLengths) {
  ExperimentSpec spec = base_spec();
  spec.length = traffic::LengthDist::geometric(3.0);
  spec.rho = 0.6;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, BatchArrivalsAndHotspot) {
  ExperimentSpec spec = base_spec();
  spec.batch_size = 4;
  spec.hotspot_fraction = 0.3;
  spec.hotspot_node = 27;
  spec.rho = 0.5;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, FiniteBuffersTailDrop) {
  ExperimentSpec spec = base_spec();
  spec.queue_capacity = 2;
  spec.rho = 0.9;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, FiniteBuffersPushOut) {
  ExperimentSpec spec = base_spec();
  spec.queue_capacity = 2;
  spec.drop_policy = net::DropPolicy::kPushOutLow;
  spec.rho = 0.9;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, RandomFaultsWithRecovery) {
  ExperimentSpec spec = base_spec();
  spec.fault_mtbf = 300.0;
  spec.fault_mttr = 20.0;
  spec.max_retries = 3;
  spec.retry_timeout = 30.0;
  spec.rho = 0.5;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, ScriptedFaults) {
  ExperimentSpec spec = base_spec();
  spec.fail_links = {3, 17, 42};
  spec.rho = 0.5;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, OverloadShed) {
  ExperimentSpec spec = base_spec();
  spec.rho = 1.3;  // past saturation by design
  spec.overload.mode = overload::OverloadMode::kShed;
  expect_equivalent(spec);
}

TEST(SchedulerEquivalence, LinkMetricsSnapshots) {
  // Per-(link, class) snapshots must match entry by entry, not just the
  // scalar roll-ups.
  ExperimentSpec spec = base_spec();
  spec.collect_link_metrics = true;
  const ExperimentResult heap = run_with(spec, sim::SchedulerKind::kHeap);
  const ExperimentResult cal = run_with(spec, sim::SchedulerKind::kCalendar);
  expect_identical(heap, cal);
  ASSERT_NE(heap.link_metrics, nullptr);
  ASSERT_NE(cal.link_metrics, nullptr);
  ASSERT_EQ(heap.link_metrics->links.size(), cal.link_metrics->links.size());
  ASSERT_EQ(heap.link_metrics->cells.size(), cal.link_metrics->cells.size());
  for (std::size_t i = 0; i < heap.link_metrics->cells.size(); ++i) {
    const auto& ch = heap.link_metrics->cells[i];
    const auto& cc = cal.link_metrics->cells[i];
    EXPECT_EQ(ch.transmissions, cc.transmissions) << "cell " << i;
    EXPECT_EQ(ch.busy_time, cc.busy_time) << "cell " << i;
    EXPECT_EQ(ch.drops, cc.drops) << "cell " << i;
    EXPECT_EQ(ch.wait.count(), cc.wait.count()) << "cell " << i;
    EXPECT_EQ(ch.wait.mean(), cc.wait.mean()) << "cell " << i;
  }
}

TEST(SchedulerEquivalence, IdenticalJsonlTraces) {
  // The strongest check: the full event-by-event JSONL trace -- every
  // event type, time, link, and task id in order -- must be byte
  // identical.  Two backends that merely agreed on aggregates could not
  // pass this with a reordered interior.
  auto trace_of = [](sim::SchedulerKind kind) {
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    ExperimentSpec spec;
    spec.shape = topo::Shape{6, 6};
    spec.rho = 0.8;
    spec.warmup = 50.0;
    spec.measure = 200.0;
    spec.seed = 7;
    spec.broadcast_fraction = 0.7;
    spec.scheduler = kind;
    spec.trace_sink = &sink;
    harness::run_experiment(spec);
    return os.str();
  };
  const std::string heap_trace = trace_of(sim::SchedulerKind::kHeap);
  const std::string cal_trace = trace_of(sim::SchedulerKind::kCalendar);
  ASSERT_FALSE(heap_trace.empty());
  EXPECT_EQ(heap_trace, cal_trace);
}

// ---------------------------------------------------------------------------
// Serial engine vs the parallel path at shards == 1 (docs/PARALLEL.md §5).
// One shard owns the whole torus, no shard hook is attached, and the
// shard rng uses the base seed directly, so the single-shard run must be
// bit-identical to the serial engine -- the same exactness bar as the
// scheduler backends above.

TEST(SchedulerEquivalence, SingleShardMatchesSerial) {
  for (sim::SchedulerKind kind :
       {sim::SchedulerKind::kHeap, sim::SchedulerKind::kCalendar}) {
    ExperimentSpec spec = base_spec();
    spec.scheduler = kind;
    const ExperimentResult serial = harness::run_experiment(spec);
    spec.shards = 1;
    const ExperimentResult sharded = harness::run_experiment(spec);
    expect_identical(serial, sharded);
  }
}

TEST(SchedulerEquivalence, SingleShardMatchesSerialFaultedRecovery) {
  // Faults, recovery timers, and finite buffers all ride the single
  // shard's scheduler; the parallel path must reproduce them exactly.
  ExperimentSpec spec = base_spec();
  spec.fault_mtbf = 300.0;
  spec.fault_mttr = 20.0;
  spec.max_retries = 3;
  spec.retry_timeout = 30.0;
  spec.queue_capacity = 4;
  spec.rho = 0.5;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  const ExperimentResult sharded = harness::run_experiment(spec);
  expect_identical(serial, sharded);
}

TEST(SchedulerEquivalence, SingleShardMatchesSerialHotspot) {
  // Hotspot skew is now shardable: at shards == 1 the slab is the whole
  // torus, the workload takes the exact legacy arithmetic path, and the
  // run must stay bit-identical to the serial engine.
  ExperimentSpec spec = base_spec();
  spec.hotspot_fraction = 0.25;
  spec.hotspot_node = 5;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  const ExperimentResult sharded = harness::run_experiment(spec);
  expect_identical(serial, sharded);
}

TEST(SchedulerEquivalence, SingleShardIdenticalJsonlTraces) {
  // Byte-identical event traces: the single-shard window loop may slice
  // the run into thousands of run_until() calls, but the event ORDER it
  // executes must match the serial engine's exactly.
  auto trace_of = [](std::uint32_t shards) {
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    ExperimentSpec spec;
    spec.shape = topo::Shape{6, 6};
    spec.rho = 0.8;
    spec.warmup = 50.0;
    spec.measure = 200.0;
    spec.seed = 7;
    spec.broadcast_fraction = 0.7;
    spec.shards = shards;
    spec.trace_sink = &sink;
    harness::run_experiment(spec);
    return os.str();
  };
  const std::string serial_trace = trace_of(0);
  const std::string sharded_trace = trace_of(1);
  ASSERT_FALSE(serial_trace.empty());
  EXPECT_EQ(serial_trace, sharded_trace);
}

TEST(SchedulerEquivalence, IdenticalFaultedTraces) {
  // Trace equivalence under faults + recovery: timers, backoff, and
  // re-floods ride the same scheduler and must interleave identically.
  auto trace_of = [](sim::SchedulerKind kind) {
    std::ostringstream os;
    obs::JsonlTraceSink sink(os);
    ExperimentSpec spec;
    spec.shape = topo::Shape{6, 6};
    spec.rho = 0.5;
    spec.warmup = 50.0;
    spec.measure = 200.0;
    spec.seed = 11;
    spec.fault_mtbf = 200.0;
    spec.fault_mttr = 15.0;
    spec.max_retries = 2;
    spec.retry_timeout = 25.0;
    spec.scheduler = kind;
    spec.trace_sink = &sink;
    harness::run_experiment(spec);
    return os.str();
  };
  const std::string heap_trace = trace_of(sim::SchedulerKind::kHeap);
  const std::string cal_trace = trace_of(sim::SchedulerKind::kCalendar);
  ASSERT_FALSE(heap_trace.empty());
  EXPECT_EQ(heap_trace, cal_trace);
}

}  // namespace
