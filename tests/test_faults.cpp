#include "pstar/fault/schedule.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/obs/probe.hpp"
#include "pstar/obs/trace.hpp"
#include "pstar/routing/unicast.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar {
namespace {

using net::Copy;
using net::Engine;
using net::EngineConfig;
using net::Priority;
using net::TaskId;
using net::TaskKind;
using topo::Dir;
using topo::Shape;
using topo::Torus;

constexpr double kInf = std::numeric_limits<double>::infinity();

class NullPolicy : public net::RoutingPolicy {
 public:
  void on_task(Engine&, TaskId, topo::NodeId) override {}
  void on_receive(Engine&, topo::NodeId, const Copy&) override {}
};

Copy copy_for(TaskId task, Priority prio) {
  Copy c;
  c.task = task;
  c.prio = prio;
  return c;
}

// ---------------------------------------------------------------- schedule

TEST(FaultSchedule, DeterministicAndHorizonBounded) {
  fault::FaultConfig cfg;
  cfg.mtbf = 50.0;
  cfg.mttr = 10.0;
  cfg.seed = 99;
  cfg.horizon = 1000.0;
  const auto a = fault::build_schedule(cfg, 8);
  const auto b = fault::build_schedule(cfg, 8);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].link, b[i].link);
    EXPECT_EQ(a[i].down, b[i].down);
  }
  // Sorted by time; no NEW failure at or past the horizon; per-link
  // events strictly alternate starting with a failure.
  std::map<topo::LinkId, bool> down;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(a[i - 1].time, a[i].time);
    }
    if (a[i].down) {
      EXPECT_LT(a[i].time, cfg.horizon);
    }
    EXPECT_NE(down[a[i].link], a[i].down ? true : false)
        << "link " << a[i].link << " double " << (a[i].down ? "down" : "up");
    down[a[i].link] = a[i].down;
  }
}

TEST(FaultSchedule, DifferentSeedsDiffer) {
  fault::FaultConfig cfg;
  cfg.mtbf = 50.0;
  cfg.mttr = 10.0;
  cfg.horizon = 1000.0;
  cfg.seed = 1;
  const auto a = fault::build_schedule(cfg, 8);
  cfg.seed = 2;
  const auto b = fault::build_schedule(cfg, 8);
  bool differ = a.size() != b.size();
  for (std::size_t i = 0; !differ && i < a.size(); ++i) {
    differ = a[i].time != b[i].time || a[i].link != b[i].link;
  }
  EXPECT_TRUE(differ);
}

TEST(FaultSchedule, RejectsInconsistentConfigs) {
  fault::FaultConfig cfg;
  cfg.mtbf = 50.0;
  cfg.mttr = 0.0;  // random process with no repair
  cfg.horizon = 100.0;
  EXPECT_THROW(fault::build_schedule(cfg, 8), std::invalid_argument);
  cfg.mttr = 10.0;
  cfg.horizon = kInf;  // unbounded event count
  EXPECT_THROW(fault::build_schedule(cfg, 8), std::invalid_argument);
  cfg.mtbf = 0.0;
  cfg.scripted.push_back({8, 0.0, kInf});  // link out of [0, 8)
  EXPECT_THROW(fault::build_schedule(cfg, 8), std::invalid_argument);
  cfg.scripted = {{0, -1.0, kInf}};  // negative start
  EXPECT_THROW(fault::build_schedule(cfg, 8), std::invalid_argument);
  cfg.scripted = {{0, 1.0, 0.0}};  // empty outage
  EXPECT_THROW(fault::build_schedule(cfg, 8), std::invalid_argument);
}

TEST(FaultSchedule, ScriptedFaultsExpand) {
  fault::FaultConfig cfg;
  cfg.scripted.push_back({3, 5.0, 2.0});
  cfg.scripted.push_back({1, 1.0, kInf});  // never repaired
  const auto events = fault::build_schedule(cfg, 8);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].link, 1);
  EXPECT_TRUE(events[0].down);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[1].link, 3);
  EXPECT_TRUE(events[1].down);
  EXPECT_DOUBLE_EQ(events[1].time, 5.0);
  EXPECT_EQ(events[2].link, 3);
  EXPECT_FALSE(events[2].down);
  EXPECT_DOUBLE_EQ(events[2].time, 7.0);
}

TEST(FaultSchedule, OverlappingScriptedIntervalsMerge) {
  fault::FaultConfig cfg;
  cfg.scripted.push_back({0, 1.0, 4.0});   // [1, 5)
  cfg.scripted.push_back({0, 3.0, 4.0});   // [3, 7): overlaps the first
  cfg.scripted.push_back({0, 7.0, 1.0});   // [7, 8): touches the merged end
  cfg.scripted.push_back({0, 10.0, 1.0});  // [10, 11): disjoint
  const auto events = fault::build_schedule(cfg, 8);
  // One continuous outage [1, 8) plus the disjoint [10, 11).
  ASSERT_EQ(events.size(), 4u);
  EXPECT_TRUE(events[0].down);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_FALSE(events[1].down);
  EXPECT_DOUBLE_EQ(events[1].time, 8.0);
  EXPECT_TRUE(events[2].down);
  EXPECT_DOUBLE_EQ(events[2].time, 10.0);
  EXPECT_FALSE(events[3].down);
  EXPECT_DOUBLE_EQ(events[3].time, 11.0);
}

TEST(FaultSchedule, InfiniteOutageSwallowsLaterIntervals) {
  fault::FaultConfig cfg;
  cfg.scripted.push_back({2, 5.0, kInf});
  cfg.scripted.push_back({2, 7.0, 1.0});  // inside the permanent outage
  cfg.scripted.push_back({2, 1.0, 2.0});  // earlier and disjoint
  const auto events = fault::build_schedule(cfg, 8);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_TRUE(events[0].down);
  EXPECT_DOUBLE_EQ(events[0].time, 1.0);
  EXPECT_FALSE(events[1].down);
  EXPECT_DOUBLE_EQ(events[1].time, 3.0);
  EXPECT_TRUE(events[2].down);  // down at 5, never repaired
  EXPECT_DOUBLE_EQ(events[2].time, 5.0);
}

TEST(FaultSchedule, RenewalPlusScriptedStaysCanonicallyAlternating) {
  // Scripted outages deliberately chosen to overlap the dense renewal
  // process; the merged schedule must still strictly alternate per link
  // with strictly increasing times, starting with a failure.
  fault::FaultConfig cfg;
  cfg.mtbf = 20.0;
  cfg.mttr = 50.0;  // links are down most of the time: overlaps guaranteed
  cfg.seed = 7;
  cfg.horizon = 500.0;
  for (topo::LinkId l = 0; l < 8; ++l) {
    cfg.scripted.push_back({l, 40.0, 100.0});
    cfg.scripted.push_back({l, 90.0, 60.0});
  }
  const auto events = fault::build_schedule(cfg, 8);
  ASSERT_FALSE(events.empty());
  std::map<topo::LinkId, double> last_time;
  std::map<topo::LinkId, bool> down;
  for (const auto& ev : events) {
    if (last_time.count(ev.link) != 0) {
      EXPECT_LT(last_time[ev.link], ev.time) << "link " << ev.link;
      EXPECT_NE(down[ev.link], ev.down) << "link " << ev.link;
    } else {
      EXPECT_TRUE(ev.down) << "link " << ev.link << " starts with a repair";
    }
    last_time[ev.link] = ev.time;
    down[ev.link] = ev.down;
  }
}

// ------------------------------------------------------------- engine core

struct EngineFixture {
  explicit EngineFixture(Shape shape, EngineConfig cfg = {})
      : torus(std::move(shape)), rng(7), engine(sim, torus, policy, rng, cfg) {}

  sim::Simulator sim;
  Torus torus;
  NullPolicy policy;
  sim::Rng rng;
  Engine engine;
};

TEST(EngineFaults, FailAbortsServiceAndDrainsQueue) {
  EngineFixture f(Shape{4, 4});
  f.engine.begin_measurement();
  const topo::LinkId link = f.torus.link(0, 0, Dir::kPlus);
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 10);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // serving
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));  // queued
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kLow));   // queued
  f.sim.at(0.5, [&f, link](sim::Simulator&) { f.engine.fail_link(link); });
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_FALSE(f.engine.link_up(link));
  EXPECT_EQ(m.fault_drops, 3u);
  EXPECT_EQ(m.drops_by_class[0], 2u);
  EXPECT_EQ(m.drops_by_class[2], 1u);
  EXPECT_EQ(m.link_failures, 1u);
  EXPECT_EQ(m.transmissions, 0u);
  EXPECT_EQ(f.engine.inflight_copies(), 0u);
  // The aborted service still occupied the link for 0.5 units but is not
  // an in-window transmission.
  EXPECT_DOUBLE_EQ(m.link_busy_time[static_cast<std::size_t>(link)], 0.5);
  EXPECT_EQ(m.link_transmissions[static_cast<std::size_t>(link)], 0u);
  // The stale completion event at t=10 must not fire: the run ended when
  // the last scheduled event (the failure) was processed.
  EXPECT_DOUBLE_EQ(f.sim.now(), 10.0);  // event still pops, but is a no-op
}

TEST(EngineFaults, SendOnDownLinkIsRejected) {
  EngineFixture f(Shape{4, 4});
  const topo::LinkId link = f.torus.link(0, 0, Dir::kPlus);
  f.engine.fail_link(link);
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.fault_drops, 1u);
  EXPECT_EQ(m.transmissions, 0u);
  EXPECT_EQ(f.engine.inflight_copies(), 0u);
}

TEST(EngineFaults, RepairRestoresService) {
  EngineFixture f(Shape{4, 4});
  const topo::LinkId link = f.torus.link(0, 0, Dir::kPlus);
  f.engine.fail_link(link);
  f.engine.restore_link(link);
  EXPECT_TRUE(f.engine.link_up(link));
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.transmissions, 1u);
  EXPECT_EQ(m.fault_drops, 0u);
  EXPECT_EQ(m.link_failures, 1u);
  EXPECT_EQ(m.link_repairs, 1u);
}

TEST(EngineFaults, OverlappingOutagesNest) {
  EngineFixture f(Shape{4, 4});
  const topo::LinkId link = f.torus.link(0, 0, Dir::kPlus);
  f.engine.fail_link(link);
  f.engine.fail_link(link);  // second outage overlaps the first
  f.engine.restore_link(link);
  EXPECT_FALSE(f.engine.link_up(link));  // one outage still covers it
  f.engine.restore_link(link);
  EXPECT_TRUE(f.engine.link_up(link));
  // Only the 0 -> 1 and 1 -> 0 transitions count.
  EXPECT_EQ(f.engine.metrics().link_failures, 1u);
  EXPECT_EQ(f.engine.metrics().link_repairs, 1u);
}

TEST(EngineFaults, DowntimeIsClampedToTheWindow) {
  EngineFixture f(Shape{4, 4});
  const topo::LinkId link = f.torus.link(0, 0, Dir::kPlus);
  f.sim.at(1.0, [&f, link](sim::Simulator&) { f.engine.fail_link(link); });
  f.sim.at(2.0, [&f](sim::Simulator&) { f.engine.begin_measurement(); });
  f.sim.at(3.0, [&f, link](sim::Simulator&) { f.engine.restore_link(link); });
  f.sim.at(4.0, [&f, link](sim::Simulator&) { f.engine.fail_link(link); });
  f.sim.at(5.0, [&f](sim::Simulator&) { f.engine.end_measurement(); });
  f.sim.at(7.0, [&f, link](sim::Simulator&) { f.engine.restore_link(link); });
  f.sim.run();
  const auto& m = f.engine.metrics();
  // Outage [1,3] overlaps [2,5] for 1 unit; the open outage [4, ...) is
  // flushed at end_measurement for 1 more; the repair at 7 adds nothing.
  EXPECT_DOUBLE_EQ(m.link_down_time[static_cast<std::size_t>(link)], 2.0);
  EXPECT_DOUBLE_EQ(m.mean_downtime_fraction(),
                   2.0 / (3.0 * static_cast<double>(m.link_down_time.size())));
}

TEST(EngineFaults, DowntimeWeightedUtilizationSkipsDeadLinks) {
  EngineFixture f(Shape{2});  // ring of 2: links 0 and 1
  f.engine.begin_measurement();
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  // The other link is down for the whole window.
  const topo::LinkId other = f.torus.link(1, 0, Dir::kPlus);
  f.engine.fail_link(other);
  f.sim.run();
  f.engine.end_measurement();
  const auto& m = f.engine.metrics();
  // Window is [0,1]: the up link was busy 1 of 1 available units; the
  // dead link has no available time and is excluded -- so the
  // availability-normalized utilization is 1, not the raw mean of 1/2.
  EXPECT_DOUBLE_EQ(m.downtime_weighted_utilization(), 1.0);
  EXPECT_DOUBLE_EQ(m.mean_utilization(), 0.5);
}

TEST(EngineFaults, ConfiguredScheduleFiresThroughTheSimulator) {
  const Torus torus(Shape{4, 4});
  EngineConfig cfg;
  cfg.faults.scripted.push_back(
      {torus.link(0, 0, Dir::kPlus), 0.5, 2.0});
  EngineFixture f(Shape{4, 4}, cfg);
  EXPECT_TRUE(f.engine.fault_aware());
  const TaskId id = f.engine.create_task(TaskKind::kBroadcast, 0, 0, 10);
  f.engine.send(0, 0, Dir::kPlus, copy_for(id, Priority::kHigh));
  f.sim.run();
  const auto& m = f.engine.metrics();
  EXPECT_EQ(m.fault_drops, 1u);  // the in-service copy aborted at t=0.5
  EXPECT_EQ(m.link_failures, 1u);
  EXPECT_EQ(m.link_repairs, 1u);
  EXPECT_TRUE(f.engine.link_up(f.torus.link(0, 0, Dir::kPlus)));
}

TEST(EngineFaults, ObserverSeesDownUpTransitions) {
  const Torus torus(Shape{4, 4});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 1.0, 2.0});
  EngineFixture f(Shape{4, 4}, cfg);
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  obs::EngineProbe probe(nullptr, &sink);
  f.engine.set_observer(&probe);
  f.sim.run();
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"ev\":\"link_down\",\"t\":1"), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"link_up\",\"t\":3"), std::string::npos);
}

// ------------------------------------------------------- unicast fallback

TEST(UnicastFaults, ReroutesAroundAFailedLink) {
  const Torus torus(Shape{4});  // one ring of 4 nodes
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  engine.begin_measurement();
  // Create the task from inside the simulation so the t=0 fault event
  // has already fired when the route is chosen.
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  // The one-hop +arc is dead; the packet takes the 3-hop -arc instead.
  EXPECT_EQ(m.tasks_completed[static_cast<std::size_t>(TaskKind::kUnicast)],
            1u);
  EXPECT_EQ(m.failed_unicasts, 0u);
  EXPECT_DOUBLE_EQ(m.unicast_hops.mean(), 3.0);
  EXPECT_DOUBLE_EQ(m.unicast_delay.mean(), 3.0);
}

TEST(UnicastFaults, FailsGracefullyWithNoDetour) {
  const Torus torus(Shape{4});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  // Both directions out of node 0 are dead: no legal detour exists and
  // the task fails at the engine's door instead of deadlocking.
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kMinus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.failed_unicasts, 1u);
  EXPECT_EQ(m.fault_drops, 1u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(UnicastFaults, TwoRingHasNoDetour) {
  // On an n == 2 wrapping ring both directions alias ONE directed link
  // (the hypercube degeneracy), so the "opposite arc" detour is the
  // dead primary itself and the task must fail at the engine's door.
  const Torus torus(Shape{2});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  ASSERT_EQ(torus.link(0, 0, Dir::kPlus), torus.link(0, 0, Dir::kMinus));
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.failed_unicasts, 1u);
  EXPECT_EQ(m.fault_drops, 1u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(UnicastFaults, MeshLineHasNoDetour) {
  // A mesh dimension does not wrap: with the only forward link dead
  // there is no opposite arc to flip to and the task fails gracefully.
  const Torus torus = Torus::mesh(Shape{4});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.failed_unicasts, 1u);
  EXPECT_EQ(m.fault_drops, 1u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(UnicastFaults, ThreeRingDetourWorks) {
  // n == 3 is the smallest ring with a genuine opposite arc.
  const Torus torus(Shape{3});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  engine.begin_measurement();
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[static_cast<std::size_t>(TaskKind::kUnicast)],
            1u);
  EXPECT_EQ(m.failed_unicasts, 0u);
  EXPECT_DOUBLE_EQ(m.unicast_hops.mean(), 2.0);
}

TEST(UnicastFaults, LongerArcBeyondInt8RangeIsRejected) {
  // The detour flips a +1 offset to -(n - 1).  Routing state stores
  // offsets as int8, so on a 200-ring the flipped offset (-199) is
  // unrepresentable: the guard must refuse the detour (graceful failure)
  // instead of overflowing into a bogus route.
  const Torus torus(Shape{200});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.failed_unicasts, 1u);
  EXPECT_EQ(m.fault_drops, 1u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(UnicastFaults, LongerArcWithinInt8RangeIsTaken) {
  // Same flip on a 120-ring: -119 fits int8, so the packet walks the
  // long way around instead of failing.
  const Torus torus(Shape{120});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig cfg;
  cfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, cfg);
  engine.begin_measurement();
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[static_cast<std::size_t>(TaskKind::kUnicast)],
            1u);
  EXPECT_EQ(m.failed_unicasts, 0u);
  EXPECT_DOUBLE_EQ(m.unicast_hops.mean(), 119.0);
}

// ------------------------------------------------------------ harness level

TEST(HarnessFaults, PermanentFaultDegradesDeliveryWithoutDeadlock) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.broadcast_fraction = 1.0;
  spec.warmup = 100.0;
  spec.measure = 300.0;
  spec.seed = 17;
  spec.fail_links = {0};
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable);
  EXPECT_EQ(r.stop_reason, sim::StopReason::kDrained);
  EXPECT_EQ(r.link_failures, 1u);
  EXPECT_GT(r.fault_drops, 0u);
  EXPECT_LT(r.delivered_fraction, 1.0);
  EXPECT_GT(r.delivered_fraction, 0.0);
}

TEST(HarnessFaults, RandomFaultsAreBitIdenticalAcrossRepeats) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.warmup = 100.0;
  spec.measure = 300.0;
  spec.seed = 23;
  spec.fault_mtbf = 150.0;
  spec.fault_mttr = 30.0;
  const auto a = harness::run_experiment(spec);
  const auto b = harness::run_experiment(spec);
  EXPECT_GT(a.link_failures, 0u);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.link_repairs, b.link_repairs);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.reception_delay_mean, b.reception_delay_mean);
  EXPECT_EQ(a.mean_downtime_fraction, b.mean_downtime_fraction);
}

TEST(HarnessFaults, FaultFreeSpecLeavesFaultMetricsZero) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.warmup = 100.0;
  spec.measure = 300.0;
  const auto r = harness::run_experiment(spec);
  EXPECT_EQ(r.link_failures, 0u);
  EXPECT_EQ(r.fault_drops, 0u);
  EXPECT_DOUBLE_EQ(r.mean_downtime_fraction, 0.0);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
  // Fault-free, availability-normalized utilization IS utilization.
  EXPECT_DOUBLE_EQ(r.downtime_weighted_utilization, r.utilization_mean);
}

TEST(HarnessFaults, TraceCarriesLinkEventsUnderFaults) {
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.warmup = 50.0;
  spec.measure = 200.0;
  spec.seed = 31;
  spec.fault_mtbf = 100.0;
  spec.fault_mttr = 20.0;
  spec.trace_sink = &sink;
  (void)harness::run_experiment(spec);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"ev\":\"link_down\""), std::string::npos);
  EXPECT_NE(trace.find("\"ev\":\"link_up\""), std::string::npos);
}

}  // namespace
}  // namespace pstar
