// Tests for the sharded conservative-sync engine (docs/PARALLEL.md).
//
// The determinism contract has two independent clauses, each locked
// here with exact (==) comparisons:
//
//   1. shards == 1 is bit-identical to the serial engine (also locked
//      trace-by-trace in test_scheduler_equivalence.cpp);
//   2. a FIXED shard count is bit-identical across worker-thread counts
//      -- threads move wall-clock, never results.
//
// Shard count itself is part of the experiment identity (like the
// seed): different S means different per-shard rng streams and arrival
// slabs, so cross-S results agree only statistically, which is asserted
// with loose tolerances rather than equality.

#include <gtest/gtest.h>

#include <stdexcept>

#include "pstar/harness/experiment.hpp"

namespace {

using namespace pstar;
using harness::ExperimentResult;
using harness::ExperimentSpec;

// Exact comparison over every deterministic result field (the host
// measurements wall_seconds / events_per_sec / peak_rss_bytes are
// documented as outside the guarantee).
void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.reception_delay_mean, b.reception_delay_mean);
  EXPECT_EQ(a.reception_delay_ci95, b.reception_delay_ci95);
  EXPECT_EQ(a.broadcast_delay_mean, b.broadcast_delay_mean);
  EXPECT_EQ(a.broadcast_delay_ci95, b.broadcast_delay_ci95);
  EXPECT_EQ(a.unicast_delay_mean, b.unicast_delay_mean);
  EXPECT_EQ(a.unicast_delay_ci95, b.unicast_delay_ci95);
  EXPECT_EQ(a.unicast_hops_mean, b.unicast_hops_mean);
  EXPECT_EQ(a.reception_p50, b.reception_p50);
  EXPECT_EQ(a.reception_p95, b.reception_p95);
  EXPECT_EQ(a.reception_p99, b.reception_p99);
  EXPECT_EQ(a.broadcast_p95, b.broadcast_p95);
  EXPECT_EQ(a.unicast_p95, b.unicast_p95);
  EXPECT_EQ(a.unicast_p99, b.unicast_p99);
  for (int c = 0; c < net::kPriorityClasses; ++c) {
    EXPECT_EQ(a.wait_mean[c], b.wait_mean[c]) << "class " << c;
    EXPECT_EQ(a.wait_count[c], b.wait_count[c]) << "class " << c;
    EXPECT_EQ(a.drops_by_class[c], b.drops_by_class[c]) << "class " << c;
  }
  EXPECT_EQ(a.utilization_mean, b.utilization_mean);
  EXPECT_EQ(a.utilization_max, b.utilization_max);
  EXPECT_EQ(a.utilization_cv, b.utilization_cv);
  EXPECT_EQ(a.utilization_by_dim, b.utilization_by_dim);
  EXPECT_EQ(a.concurrent_broadcasts, b.concurrent_broadcasts);
  EXPECT_EQ(a.concurrent_unicasts, b.concurrent_unicasts);
  EXPECT_EQ(a.queue_occupancy_mean, b.queue_occupancy_mean);
  EXPECT_EQ(a.queue_occupancy_max, b.queue_occupancy_max);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.lost_receptions, b.lost_receptions);
  EXPECT_EQ(a.failed_broadcasts, b.failed_broadcasts);
  EXPECT_EQ(a.failed_unicasts, b.failed_unicasts);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
  EXPECT_EQ(a.link_failures, b.link_failures);
  EXPECT_EQ(a.link_repairs, b.link_repairs);
  EXPECT_EQ(a.fault_drops, b.fault_drops);
  EXPECT_EQ(a.mean_downtime_fraction, b.mean_downtime_fraction);
  EXPECT_EQ(a.measured_broadcasts, b.measured_broadcasts);
  EXPECT_EQ(a.measured_unicasts, b.measured_unicasts);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.sim_end_time, b.sim_end_time);
  EXPECT_EQ(a.unstable, b.unstable);
  EXPECT_EQ(a.saturated, b.saturated);
  EXPECT_EQ(a.inflight_at_end, b.inflight_at_end);
  EXPECT_EQ(a.stop_reason, b.stop_reason);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

ExperimentSpec base_spec() {
  ExperimentSpec spec;
  spec.shape = topo::Shape{8, 8};
  spec.rho = 0.7;
  spec.warmup = 100.0;
  spec.measure = 400.0;
  spec.seed = 42;
  return spec;
}

// ---------------------------------------------------------------------------
// Clause 1: shards == 1 vs serial.

TEST(ParallelEngine, SingleShardMatchesSerialBroadcast) {
  ExperimentSpec spec = base_spec();
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  expect_identical(serial, harness::run_experiment(spec));
}

TEST(ParallelEngine, SingleShardMatchesSerialMixedTraffic) {
  ExperimentSpec spec = base_spec();
  spec.broadcast_fraction = 0.5;
  spec.record_histograms = true;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  expect_identical(serial, harness::run_experiment(spec));
}

TEST(ParallelEngine, SingleShardMatchesSerialFiniteBuffers) {
  ExperimentSpec spec = base_spec();
  spec.queue_capacity = 2;
  spec.rho = 0.9;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  expect_identical(serial, harness::run_experiment(spec));
}

TEST(ParallelEngine, SingleShardMatchesSerialScriptedFaults) {
  ExperimentSpec spec = base_spec();
  spec.fail_links = {3, 17, 42};
  spec.rho = 0.5;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  expect_identical(serial, harness::run_experiment(spec));
}

TEST(ParallelEngine, SingleShardMatchesSerialOverloadShed) {
  // Overload control is legal at shards == 1 (one shard sees the whole
  // network, so the detector's global view is intact).
  ExperimentSpec spec = base_spec();
  spec.rho = 1.3;
  spec.overload.mode = overload::OverloadMode::kShed;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 1;
  expect_identical(serial, harness::run_experiment(spec));
}

TEST(ParallelEngine, SingleShardMatchesSerialEventLimit) {
  // The window loop's per-round budget must reproduce the serial
  // engine's exact stopping point, not just "roughly max_events".
  ExperimentSpec spec = base_spec();
  spec.max_events = 20'000;
  const ExperimentResult serial = harness::run_experiment(spec);
  ASSERT_EQ(serial.stop_reason, sim::StopReason::kEventLimit);
  spec.shards = 1;
  expect_identical(serial, harness::run_experiment(spec));
}

// ---------------------------------------------------------------------------
// Clause 2: fixed shard count, varying worker threads.

TEST(ParallelEngine, FixedShardsBitIdenticalAcrossJobs) {
  ExperimentSpec spec = base_spec();
  spec.shards = 4;
  spec.shard_jobs = 1;
  const ExperimentResult one_thread = harness::run_experiment(spec);
  spec.shard_jobs = 2;
  expect_identical(one_thread, harness::run_experiment(spec));
  spec.shard_jobs = 4;
  expect_identical(one_thread, harness::run_experiment(spec));
}

TEST(ParallelEngine, FixedShardsBitIdenticalAcrossJobsWithFaults) {
  // Faults + per-link outage bookkeeping cross the shard hook's loss
  // paths (orphaned proxies, spared in-service copies); those must be
  // thread-schedule independent too.
  ExperimentSpec spec = base_spec();
  spec.rho = 0.5;
  spec.fault_mtbf = 300.0;
  spec.fault_mttr = 20.0;
  spec.shards = 4;
  spec.shard_jobs = 1;
  const ExperimentResult one_thread = harness::run_experiment(spec);
  EXPECT_GT(one_thread.link_failures, 0u);
  spec.shard_jobs = 4;
  expect_identical(one_thread, harness::run_experiment(spec));
}

TEST(ParallelEngine, RepeatedRunBitIdentical) {
  // Same spec twice in the same process: no hidden global state.
  ExperimentSpec spec = base_spec();
  spec.shards = 3;  // deliberately not a divisor of 64 nodes
  const ExperimentResult first = harness::run_experiment(spec);
  expect_identical(first, harness::run_experiment(spec));
}

// ---------------------------------------------------------------------------
// Cross-shard handoffs.

TEST(ParallelEngine, HandoffsAtWindowEdges) {
  // Fixed service length == the window width, so every cross-shard
  // arrival lands EXACTLY on a window boundary -- the edge case where a
  // handoff announced in [t, t+W) arrives at precisely t+W and must be
  // executed in the next round, never late or dropped.  Every broadcast
  // must still reach all 63 remote nodes: lost receptions would show up
  // as failed broadcasts and a delivered fraction below 1.
  ExperimentSpec spec = base_spec();
  spec.length = traffic::LengthDist::fixed_of(2);
  spec.rho = 0.5;
  spec.shards = 4;
  const ExperimentResult r = harness::run_experiment(spec);
  EXPECT_EQ(r.stop_reason, sim::StopReason::kDrained);
  EXPECT_FALSE(r.unstable);
  EXPECT_GT(r.measured_broadcasts, 0u);
  EXPECT_EQ(r.lost_receptions, 0u);
  EXPECT_EQ(r.failed_broadcasts, 0u);
  EXPECT_EQ(r.drops, 0u);
  // Edge-aligned arrivals must be reproducible across thread counts too.
  ExperimentSpec again = spec;
  again.shard_jobs = 4;
  expect_identical(r, harness::run_experiment(again));
}

TEST(ParallelEngine, ShardedStatisticsTrackSerial) {
  // Cross-S agreement is statistical, not exact: the sharded run samples
  // different streams, but it simulates the same physical system, so
  // first moments must land close to the serial run's.
  ExperimentSpec spec = base_spec();
  spec.rho = 0.5;
  spec.measure = 2000.0;
  const ExperimentResult serial = harness::run_experiment(spec);
  spec.shards = 4;
  const ExperimentResult sharded = harness::run_experiment(spec);
  EXPECT_FALSE(sharded.unstable);
  EXPECT_NEAR(sharded.broadcast_delay_mean, serial.broadcast_delay_mean,
              0.25 * serial.broadcast_delay_mean);
  EXPECT_NEAR(sharded.utilization_mean, serial.utilization_mean,
              0.15 * serial.utilization_mean);
}

TEST(ParallelEngine, UnicastCrossesShards) {
  // Unicast-only traffic: every delivery on a multi-shard torus has a
  // good chance of crossing a boundary; terminal-shard reporting must
  // close every task (no stuck proxies -> the run drains).
  ExperimentSpec spec = base_spec();
  spec.broadcast_fraction = 0.0;
  spec.rho = 0.6;
  spec.shards = 4;
  const ExperimentResult r = harness::run_experiment(spec);
  EXPECT_EQ(r.stop_reason, sim::StopReason::kDrained);
  EXPECT_GT(r.measured_unicasts, 0u);
  EXPECT_GT(r.unicast_hops_mean, 0.0);
  EXPECT_EQ(r.failed_unicasts, 0u);
}

TEST(ParallelEngine, ShardedLinkMetricsMergeCoversAllLinks) {
  // Per-shard registries must merge back into one full-size snapshot
  // with every directed link's load present (a dropped slab would leave
  // zero cells and skew the imbalance columns, docs/OBSERVABILITY.md).
  ExperimentSpec spec = base_spec();
  spec.collect_link_metrics = true;
  spec.shards = 4;
  const ExperimentResult r = harness::run_experiment(spec);
  ASSERT_NE(r.link_metrics, nullptr);
  const auto& snap = *r.link_metrics;
  ASSERT_EQ(snap.links.size(), 256u);  // 8x8 torus, 4 directed links/node
  std::uint64_t total_tx = 0;
  std::size_t loaded_links = 0;
  for (topo::LinkId l = 0; l < static_cast<topo::LinkId>(snap.links.size());
       ++l) {
    const std::uint64_t tx = snap.link_transmissions(l);
    total_tx += tx;
    if (tx > 0) ++loaded_links;
  }
  // Broadcast load at rho 0.7 touches every link of every slab; a merge
  // that dropped a slab would leave its 64 links at zero.
  EXPECT_EQ(loaded_links, snap.links.size());
  // The registry window-clamps harder than the engine's Metrics (it
  // counts a transmission only against the registry window), so its
  // total is bounded by -- not equal to -- the engine's.
  EXPECT_GT(total_tx, 0u);
  EXPECT_LE(total_tx, r.transmissions);
  EXPECT_GT(snap.span(), 0.0);
}

// ---------------------------------------------------------------------------
// Config rejections: global-state features are refused at shards > 1.

TEST(ParallelEngine, RejectsGlobalFeaturesWhenSharded) {
  ExperimentSpec base = base_spec();
  base.shards = 2;
  {
    ExperimentSpec spec = base;
    spec.broadcast_fraction = 0.4;
    spec.multicast_fraction = 0.3;
    EXPECT_THROW(harness::run_experiment(spec), std::invalid_argument);
  }
  {
    ExperimentSpec spec = base;
    spec.max_retries = 2;
    EXPECT_THROW(harness::run_experiment(spec), std::invalid_argument);
  }
  {
    ExperimentSpec spec = base;
    spec.overload.mode = overload::OverloadMode::kThrottle;
    EXPECT_THROW(harness::run_experiment(spec), std::invalid_argument);
  }
  {
    ExperimentSpec spec = base;
    spec.adaptive.mode = routing::AdaptiveMode::kPeriodic;
    EXPECT_THROW(harness::run_experiment(spec), std::invalid_argument);
  }
  // Every rejection names the conflicting flag and the supported
  // alternative, so the operator knows what to change.
  {
    ExperimentSpec spec = base;
    spec.max_retries = 2;
    try {
      harness::run_experiment(spec);
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("--retries"), std::string::npos) << what;
      EXPECT_NE(what.find("--shards 1"), std::string::npos) << what;
    }
  }
}

TEST(ParallelEngine, ShardedHotspotRunsAndSkewsLoad) {
  // Hotspot skew used to be rejected at shards > 1; the workload now
  // partitions the hotspot's arrival weight to the slab that owns it, so
  // a sharded hotspot run must work and still concentrate traffic.
  ExperimentSpec spec = base_spec();
  spec.shards = 2;
  spec.hotspot_fraction = 0.3;
  spec.hotspot_node = 0;
  const harness::ExperimentResult r = harness::run_experiment(spec);
  EXPECT_GT(r.delivered_fraction, 0.9);
  EXPECT_GT(r.transmissions, 0u);
}

TEST(ParallelEngine, RejectsMoreShardsThanNodes) {
  ExperimentSpec spec;
  spec.shape = topo::Shape{2, 2};
  spec.shards = 5;
  EXPECT_THROW(harness::run_experiment(spec), std::invalid_argument);
}

}  // namespace
