#include "pstar/topology/shape.hpp"

#include <gtest/gtest.h>

namespace pstar::topo {
namespace {

TEST(Shape, BasicGeometry) {
  Shape s{4, 6, 2};
  EXPECT_EQ(s.dims(), 3);
  EXPECT_EQ(s.size(0), 4);
  EXPECT_EQ(s.size(1), 6);
  EXPECT_EQ(s.size(2), 2);
  EXPECT_EQ(s.node_count(), 48);
}

TEST(Shape, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(Shape(std::vector<std::int32_t>{}), std::invalid_argument);
  EXPECT_THROW((Shape{4, 0}), std::invalid_argument);
  EXPECT_THROW((Shape{-1}), std::invalid_argument);
}

TEST(Shape, KaryFactory) {
  const Shape s = Shape::kary(5, 3);
  EXPECT_EQ(s.dims(), 3);
  EXPECT_EQ(s.node_count(), 125);
  EXPECT_TRUE(s.symmetric());
}

TEST(Shape, HypercubeFactory) {
  const Shape s = Shape::hypercube(4);
  EXPECT_EQ(s.dims(), 4);
  EXPECT_EQ(s.node_count(), 16);
  for (std::int32_t i = 0; i < 4; ++i) EXPECT_EQ(s.size(i), 2);
}

TEST(Shape, SymmetryDetection) {
  EXPECT_TRUE((Shape{8, 8}).symmetric());
  EXPECT_FALSE((Shape{4, 8}).symmetric());
  EXPECT_TRUE((Shape{7}).symmetric());
}

TEST(Shape, IndexCoordsRoundTrip) {
  const Shape s{3, 4, 5};
  for (NodeId id = 0; id < s.node_count(); ++id) {
    const Coords c = s.coords_of(id);
    EXPECT_EQ(s.index_of(c), id);
    for (std::int32_t dim = 0; dim < s.dims(); ++dim) {
      EXPECT_EQ(s.coord_of(id, dim), c[static_cast<std::size_t>(dim)]);
      EXPECT_GE(c[static_cast<std::size_t>(dim)], 0);
      EXPECT_LT(c[static_cast<std::size_t>(dim)], s.size(dim));
    }
  }
}

TEST(Shape, IndexOfValidatesInput) {
  const Shape s{3, 3};
  EXPECT_THROW(s.index_of({1}), std::invalid_argument);
  EXPECT_THROW(s.index_of({1, 3}), std::out_of_range);
  EXPECT_THROW(s.index_of({-1, 0}), std::out_of_range);
}

TEST(Shape, NeighborWrapsAround) {
  const Shape s{5, 3};
  const NodeId origin = s.index_of({0, 0});
  EXPECT_EQ(s.coords_of(s.neighbor(origin, 0, -1))[0], 4);
  EXPECT_EQ(s.coords_of(s.neighbor(origin, 0, +1))[0], 1);
  EXPECT_EQ(s.coords_of(s.neighbor(origin, 1, -1))[1], 2);
  // Multi-step deltas also wrap.
  EXPECT_EQ(s.coords_of(s.neighbor(origin, 0, 7))[0], 2);
  EXPECT_EQ(s.coords_of(s.neighbor(origin, 0, -12))[0], 3);
}

TEST(Shape, NeighborKeepsOtherCoordinates) {
  const Shape s{4, 4, 4};
  const NodeId n = s.index_of({1, 2, 3});
  const Coords c = s.coords_of(s.neighbor(n, 1, +1));
  EXPECT_EQ(c[0], 1);
  EXPECT_EQ(c[1], 3);
  EXPECT_EQ(c[2], 3);
}

TEST(Shape, ToStringFormat) {
  EXPECT_EQ((Shape{8, 8, 8}).to_string(), "8x8x8");
  EXPECT_EQ((Shape{16}).to_string(), "16");
}

TEST(Shape, EqualityComparison) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
}

TEST(Shape, SizeOneDimension) {
  const Shape s{1, 5};
  EXPECT_EQ(s.node_count(), 5);
  const NodeId n = s.index_of({0, 2});
  // Moving along the size-1 dimension stays put.
  EXPECT_EQ(s.neighbor(n, 0, +1), n);
}

}  // namespace
}  // namespace pstar::topo
