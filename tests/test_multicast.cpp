// STAR multicast over pruned SDC trees: tree structure, delivery
// semantics, heterogeneous mixing, and loss accounting.

#include "pstar/routing/multicast.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pstar/core/policy_factory.hpp"
#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/routing/star_probabilities.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"
#include "pstar/topology/ring.hpp"
#include "pstar/traffic/workload.hpp"

namespace pstar::routing {
namespace {

using topo::Shape;
using topo::Torus;

MulticastPolicy make_mcast_policy(const Torus& torus) {
  MulticastConfig cfg;
  cfg.ending_probabilities = uniform_probabilities(torus.dims()).x;
  cfg.priorities = priority_map(Discipline::kTwoClass);
  return MulticastPolicy(torus, cfg);
}

TEST(PrunedTree, CoversExactlyTheNeededNodes) {
  const Torus t(Shape{5, 5});
  MulticastPolicy policy = make_mcast_policy(t);
  const std::vector<topo::NodeId> dests{3, 11, 24};
  for (std::int32_t l = 0; l < t.dims(); ++l) {
    const auto edges = policy.build_pruned_tree(0, l, dests);
    std::set<topo::NodeId> covered{0};
    for (const auto& e : edges) {
      EXPECT_TRUE(covered.count(e.from)) << "edge from uncovered node";
      EXPECT_TRUE(covered.insert(e.to).second) << "node covered twice";
    }
    for (topo::NodeId d : dests) EXPECT_TRUE(covered.count(d));
    // Every leaf of the pruned tree is a destination (minimality of the
    // prune: no edge dangles toward non-destinations).
    std::set<topo::NodeId> has_child;
    for (const auto& e : edges) has_child.insert(e.from);
    for (const auto& e : edges) {
      if (!has_child.count(e.to)) {
        EXPECT_TRUE(std::count(dests.begin(), dests.end(), e.to) > 0)
            << "leaf " << e.to << " is not a destination";
      }
    }
  }
}

TEST(PrunedTree, SingleDestinationIsAShortestPath) {
  const Torus t(Shape{6, 7});
  MulticastPolicy policy = make_mcast_policy(t);
  sim::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const auto src = static_cast<topo::NodeId>(rng.below(42));
    auto dst = static_cast<topo::NodeId>(rng.below(42));
    if (dst == src) continue;
    const std::vector<topo::NodeId> dests{dst};
    const auto l = static_cast<std::int32_t>(rng.below(2));
    const auto edges = policy.build_pruned_tree(src, l, dests);
    std::int64_t dist = 0;
    for (std::int32_t i = 0; i < t.dims(); ++i) {
      dist += topo::ring_distance(t.shape().coord_of(src, i),
                                  t.shape().coord_of(dst, i),
                                  t.shape().size(i));
    }
    EXPECT_EQ(static_cast<std::int64_t>(edges.size()), dist);
  }
}

TEST(PrunedTree, AllDestinationsEqualsFullBroadcastTree) {
  const Torus t(Shape{4, 4});
  MulticastPolicy policy = make_mcast_policy(t);
  std::vector<topo::NodeId> all;
  for (topo::NodeId v = 1; v < t.node_count(); ++v) all.push_back(v);
  const auto edges = policy.build_pruned_tree(0, 1, all);
  EXPECT_EQ(static_cast<std::int64_t>(edges.size()), t.node_count() - 1);
}

TEST(PrunedTree, EmptyDestinationsIsEmpty) {
  const Torus t(Shape{4, 4});
  MulticastPolicy policy = make_mcast_policy(t);
  EXPECT_TRUE(policy.build_pruned_tree(0, 0, {}).empty());
  // Destinations == {source} also prunes to nothing.
  const std::vector<topo::NodeId> self{0};
  EXPECT_TRUE(policy.build_pruned_tree(0, 0, self).empty());
}

TEST(Multicast, EngineDeliversToEveryDestination) {
  const Torus t(Shape{5, 5});
  sim::Rng rng(9);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  engine.begin_measurement();
  const std::vector<topo::NodeId> dests{1, 7, 18, 24};
  engine.create_multicast(12, dests, 1);
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[2], 1u);
  EXPECT_EQ(m.multicast_delay.count(), 1u);
  EXPECT_GT(m.transmissions, 3u);           // at least one hop per dest arc
  EXPECT_LT(m.transmissions, 25u);          // far fewer than a broadcast
  EXPECT_EQ(policy->multicast()->live_plans(), 0u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(Multicast, ExpectedTransmissionsSanity) {
  const Torus t(Shape{8, 8});
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Rng rng(10);
  // One destination: the pruned tree is a shortest path, so its expected
  // size is the average distance.
  const double one = policy->multicast()->expected_transmissions(1, 2000, rng);
  EXPECT_NEAR(one, t.average_distance(), 0.15);
  // All-but-one destinations: nearly the full broadcast tree.
  const double most =
      policy->multicast()->expected_transmissions(62, 200, rng);
  EXPECT_GT(most, 58.0);
  EXPECT_LE(most, 63.0);
  // Monotone in group size.
  const double mid = policy->multicast()->expected_transmissions(8, 500, rng);
  EXPECT_GT(mid, one);
  EXPECT_LT(mid, most);
}

TEST(Multicast, WorkloadMixesThreeKinds) {
  const Torus t(Shape{6, 6});
  sim::Rng rng(11);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 0.01, 0.01);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  traffic::WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.002;
  cfg.lambda_unicast = 0.02;
  cfg.lambda_multicast = 0.005;
  cfg.multicast_group = 5;
  cfg.stop_time = 3000.0;
  traffic::Workload w(sim, engine, rng, cfg);
  engine.begin_measurement();
  w.start();
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_GT(m.tasks_completed[0], 50u);
  EXPECT_GT(m.tasks_completed[1], 500u);
  EXPECT_GT(m.tasks_completed[2], 100u);
  EXPECT_EQ(m.tasks_completed[2], m.tasks_generated[2]);
  EXPECT_EQ(policy->multicast()->live_plans(), 0u);
  EXPECT_GT(m.multicast_reception_delay.mean(), 1.0);
  EXPECT_GT(m.multicast_delay.mean(), m.multicast_reception_delay.mean());
}

TEST(Multicast, HarnessMixedLoadIsCalibrated) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.rho = 0.6;
  spec.broadcast_fraction = 0.3;
  spec.multicast_fraction = 0.3;
  spec.multicast_group = 6;
  spec.warmup = 400.0;
  spec.measure = 2000.0;
  spec.seed = 12;
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable);
  // The Monte-Carlo rate calibration should land the total utilization
  // near the target.
  EXPECT_NEAR(r.utilization_mean, 0.6, 0.05);
  EXPECT_GT(r.measured_multicasts, 100u);
  EXPECT_GT(r.measured_broadcasts, 50u);
  EXPECT_GT(r.measured_unicasts, 500u);
  EXPECT_GT(r.multicast_delay_mean, 0.0);
}

TEST(Multicast, FractionsMustNotExceedOne) {
  harness::ExperimentSpec spec;
  spec.broadcast_fraction = 0.7;
  spec.multicast_fraction = 0.5;
  EXPECT_THROW(harness::run_experiment(spec), std::invalid_argument);
}

TEST(Multicast, FractionsSummingExactlyToOneAreAccepted) {
  // 0.7 + 0.3 leaves an epsilon-negative unicast share in floating
  // point; the harness must clamp rather than reject or mis-split.
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.4;
  spec.broadcast_fraction = 0.7;
  spec.multicast_fraction = 0.3;
  spec.multicast_group = 3;
  spec.warmup = 100.0;
  spec.measure = 600.0;
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable);
  EXPECT_GT(r.measured_broadcasts, 10u);
  EXPECT_GT(r.measured_multicasts, 10u);
  EXPECT_EQ(r.measured_unicasts, 0u);
}

TEST(Multicast, DropsAccountExactly) {
  const Torus t(Shape{5, 5});
  sim::Rng rng(13);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::EngineConfig cfg;
  cfg.queue_capacity = 1;
  net::Engine engine(sim, t, *policy, rng, cfg);
  std::vector<topo::NodeId> dests;
  for (topo::NodeId v = 1; v < 20; ++v) dests.push_back(v);
  std::uint32_t expected_total = 0;
  for (int burst = 0; burst < 10; ++burst) {
    engine.create_multicast(0, dests, 1);
  }
  sim.run();
  const auto& m = engine.metrics();
  (void)expected_total;
  EXPECT_GT(m.lost_multicast_receptions, 0u);
  EXPECT_EQ(m.multicast_receptions + m.lost_multicast_receptions,
            m.multicast_expected_total);
  EXPECT_GT(m.failed_multicasts, 0u);
  EXPECT_EQ(m.tasks_completed[2], 10u);
  EXPECT_EQ(policy->multicast()->live_plans(), 0u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(Multicast, PoliciesWithoutMulticastRejectIt) {
  const Torus t(Shape{4, 4});
  routing::SdcBroadcastConfig bcfg;
  bcfg.ending_probabilities = uniform_probabilities(2).x;
  bcfg.priorities = priority_map(Discipline::kFcfs);
  CombinedPolicy policy(std::make_unique<SdcBroadcastPolicy>(t, bcfg),
                        nullptr, nullptr);
  sim::Rng rng(14);
  sim::Simulator sim;
  net::Engine engine(sim, t, policy, rng);
  const std::vector<topo::NodeId> dests{3};
  EXPECT_THROW(engine.create_multicast(0, dests, 1), std::logic_error);
}

}  // namespace
}  // namespace pstar::routing
