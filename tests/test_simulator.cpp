#include "pstar/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pstar::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(Simulator, RunsEventsAndAdvancesClock) {
  Simulator sim;
  std::vector<double> times;
  sim.at(2.0, [&times](Simulator& s) { times.push_back(s.now()); });
  sim.at(1.0, [&times](Simulator& s) { times.push_back(s.now()); });
  EXPECT_EQ(sim.run(), StopReason::kDrained);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(5.0, [&fired_at](Simulator& s) {
    s.after(2.5, [&fired_at](Simulator& inner) { fired_at = inner.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.at(3.0, [](Simulator& s) {
    EXPECT_THROW(s.at(1.0, [](Simulator&) {}), std::invalid_argument);
  });
  sim.run();
}

TEST(Simulator, TimeLimitStopsBeforeLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&fired](Simulator&) { ++fired; });
  sim.at(10.0, [&fired](Simulator&) { ++fired; });
  EXPECT_EQ(sim.run(5.0), StopReason::kTimeLimit);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);  // clock stays at last executed event
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, EventLimitStopsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.at(static_cast<double>(i), [&fired](Simulator&) { ++fired; });
  }
  EXPECT_EQ(sim.run(100.0, 3), StopReason::kEventLimit);
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopRequestHonored) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&fired](Simulator& s) {
    ++fired;
    s.stop();
  });
  sim.at(2.0, [&fired](Simulator&) { ++fired; });
  EXPECT_EQ(sim.run(), StopReason::kStopped);
  EXPECT_EQ(fired, 1);
  // A later run resumes with the remaining events.
  EXPECT_EQ(sim.run(), StopReason::kDrained);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(static_cast<double>(i), [](Simulator&) {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, SelfSchedulingChainTerminatesAtLimit) {
  Simulator sim;
  // A process that reschedules itself forever; run must respect the event
  // budget (this is how workload generators behave).
  std::function<void(Simulator&)> tick = [&tick](Simulator& s) {
    s.after(1.0, tick);
  };
  sim.at(0.0, tick);
  EXPECT_EQ(sim.run(std::numeric_limits<double>::infinity(), 1000),
            StopReason::kEventLimit);
  EXPECT_EQ(sim.events_executed(), 1000u);
}

TEST(Simulator, ZeroDelayEventsRunInOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(1.0, [&order](Simulator& s) {
    order.push_back(0);
    s.after(0.0, [&order](Simulator&) { order.push_back(1); });
    s.after(0.0, [&order](Simulator&) { order.push_back(2); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace pstar::sim
