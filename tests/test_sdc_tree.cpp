#include "pstar/routing/sdc_broadcast.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "pstar/routing/star_probabilities.hpp"

namespace pstar::routing {
namespace {

using topo::Shape;
using topo::Torus;

class SdcTreeShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(SdcTreeShapes, CoversEveryNodeExactlyOnce) {
  const Torus t(GetParam());
  for (topo::NodeId source = 0; source < t.node_count();
       source += std::max<topo::NodeId>(1, t.node_count() / 7)) {
    for (std::int32_t l = 0; l < t.dims(); ++l) {
      const auto edges = build_sdc_tree(t, source, l);
      ASSERT_EQ(static_cast<std::int64_t>(edges.size()), t.node_count() - 1)
          << GetParam().to_string() << " l=" << l;
      std::set<topo::NodeId> received;
      for (const TreeEdge& e : edges) {
        EXPECT_TRUE(received.insert(e.to).second)
            << "node received twice: " << e.to;
        EXPECT_NE(e.to, source);
      }
      EXPECT_EQ(static_cast<std::int64_t>(received.size()), t.node_count() - 1);
    }
  }
}

TEST_P(SdcTreeShapes, EdgesFormATreeRootedAtSource) {
  const Torus t(GetParam());
  const auto edges = build_sdc_tree(t, 0, 0);
  // Every edge's origin must already hold the packet (source or an
  // earlier edge's destination) -- i.e. edges arrive in a valid
  // activation order.
  std::set<topo::NodeId> holders{0};
  for (const TreeEdge& e : edges) {
    EXPECT_TRUE(holders.count(e.from)) << "edge from non-holder " << e.from;
    holders.insert(e.to);
  }
}

TEST_P(SdcTreeShapes, PerDimensionCountsMatchEq1) {
  const Torus t(GetParam());
  for (std::int32_t l = 0; l < t.dims(); ++l) {
    const auto edges = build_sdc_tree(t, 0, l);
    std::map<std::int32_t, double> count;
    for (const TreeEdge& e : edges) count[e.dim] += 1.0;
    for (std::int32_t i = 0; i < t.dims(); ++i) {
      EXPECT_DOUBLE_EQ(count[i], sdc_transmissions(t.shape(), i, l))
          << GetParam().to_string() << " dim=" << i << " l=" << l;
    }
  }
}

TEST_P(SdcTreeShapes, EndingFlagOnlyOnEndingDimension) {
  const Torus t(GetParam());
  for (std::int32_t l = 0; l < t.dims(); ++l) {
    for (const TreeEdge& e : build_sdc_tree(t, 0, l)) {
      if (t.dims() == 1) {
        EXPECT_TRUE(e.ending);
        continue;
      }
      EXPECT_EQ(e.ending, e.dim == l && e.phase == t.dims() - 1);
      if (e.ending) EXPECT_EQ(e.dim, l);
    }
  }
}

TEST_P(SdcTreeShapes, VirtualChannelSplitMatchesPaper) {
  const Torus t(GetParam());
  for (std::int32_t l = 0; l < t.dims(); ++l) {
    for (const TreeEdge& e : build_sdc_tree(t, 0, l)) {
      EXPECT_EQ(e.vc, e.dim > l ? 0 : 1);
    }
  }
}

TEST_P(SdcTreeShapes, PhasesAreMonotoneAlongPaths) {
  // Walking from the source, phases along any root-to-leaf path never
  // decrease (phase order is the SDC schedule).
  const Torus t(GetParam());
  const auto edges = build_sdc_tree(t, 0, t.dims() - 1);
  std::map<topo::NodeId, std::int32_t> phase_at;
  phase_at[0] = -1;
  for (const TreeEdge& e : edges) {
    ASSERT_TRUE(phase_at.count(e.from));
    EXPECT_GE(e.phase, phase_at[e.from]);
    phase_at[e.to] = e.phase;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SdcTreeShapes,
                         ::testing::Values(Shape{5, 5}, Shape{8, 8},
                                           Shape{4, 8}, Shape{3, 4, 5},
                                           Shape{2, 2, 2, 2}, Shape{2, 5},
                                           Shape{7}, Shape{1, 6},
                                           Shape{6, 1, 4}),
                         [](const auto& info) {
                           std::string name = info.param.to_string();
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name;
                         });

TEST(SdcTree, DepthIsBoundedByArcSums) {
  // A packet is forwarded at most ceil((n_i - 1)/2) hops per dimension.
  const Torus t(Shape{8, 8});
  const auto edges = build_sdc_tree(t, 0, 1);
  std::map<topo::NodeId, std::int32_t> depth;
  depth[0] = 0;
  std::int32_t max_depth = 0;
  for (const TreeEdge& e : edges) {
    depth[e.to] = depth[e.from] + 1;
    max_depth = std::max(max_depth, depth[e.to]);
  }
  EXPECT_LE(max_depth, 4 + 4);  // long arc of 8 is 4, two dimensions
  EXPECT_GE(max_depth, 4);
}

TEST(SdcTree, HypercubeTreeIsDimensionOrderBroadcast) {
  // In a hypercube every ring flood is a single transmission; the SDC
  // tree is the classic binomial broadcast tree.
  const Torus t(Shape::hypercube(4));
  const auto edges = build_sdc_tree(t, 0, 3);
  EXPECT_EQ(edges.size(), 15u);
  std::map<std::int32_t, int> per_phase;
  for (const TreeEdge& e : edges) ++per_phase[e.phase];
  // Phase q doubles the holder set: 1, 2, 4, 8 transmissions.
  EXPECT_EQ(per_phase[0], 1);
  EXPECT_EQ(per_phase[1], 2);
  EXPECT_EQ(per_phase[2], 4);
  EXPECT_EQ(per_phase[3], 8);
}

TEST(SdcTree, RejectsBadEndingDim) {
  const Torus t(Shape{4, 4});
  EXPECT_THROW(build_sdc_tree(t, 0, -1), std::invalid_argument);
  EXPECT_THROW(build_sdc_tree(t, 0, 2), std::invalid_argument);
}

}  // namespace
}  // namespace pstar::routing
