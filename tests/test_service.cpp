// Service mode (docs/SERVICE.md): the resume determinism contract.
//
// The tentpole assertion: checkpoint + kill + restore produces
// BYTE-IDENTICAL outputs versus the uninterrupted run -- the trace file,
// the metrics file, and a final end-of-run snapshot (which serializes
// every counter, queue, rng cursor, and histogram, so byte equality of
// the final snapshots is an EXPECT_EQ over the complete final state).
// The matrix below covers every subsystem combination: faults x
// recovery x overload x adaptive x attack x policing, on both scheduler
// backends, including a cut with recovery retries pending and a cut
// inside an active quarantine window.
//
// The "kill" is simulated faithfully: after the checkpoint the first
// process keeps running PAST the snapshot instant (dirtying the trace
// and metrics files with post-checkpoint records) and is then destroyed
// without another checkpoint, so restore must truncate the crash tail
// at the recorded byte offsets.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pstar/service/dsl.hpp"
#include "pstar/service/serve.hpp"

namespace pstar {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

harness::ExperimentSpec base_spec() {
  harness::ExperimentSpec spec;
  spec.shape = topo::Shape{4, 4};
  spec.scheme = *core::Scheme::by_name("priority-STAR");
  spec.rho = 0.4;
  spec.warmup = 50.0;
  spec.measure = 300.0;
  spec.seed = 7;
  return spec;
}

struct ServiceCase {
  const char* label;
  harness::ExperimentSpec spec;
  double cut = 120.0;        ///< checkpoint instant
  double crash_tail = 60.0;  ///< extra time run after the checkpoint
  bool scripted = false;     ///< add DSL-style scripted arrivals
  bool expect_open_retries = false;    ///< retries pending at the cut
  bool expect_quarantine_open = false; ///< active window at the cut
};

using TimedArrival = service::TimedArrival;

std::vector<TimedArrival> scripted_arrivals() {
  std::vector<service::TimedArrival> a;
  for (int i = 0; i < 12; ++i) {
    service::TimedArrival ta;
    ta.time = 20.0 + 10.0 * i;
    if (i % 3 == 0) {
      ta.arrival.kind = net::TaskKind::kBroadcast;
      ta.arrival.source = static_cast<topo::NodeId>(i % 16);
      ta.arrival.dest = ta.arrival.source;
    } else {
      ta.arrival.kind = net::TaskKind::kUnicast;
      ta.arrival.source = static_cast<topo::NodeId>(i % 16);
      ta.arrival.dest = static_cast<topo::NodeId>((i * 5 + 3) % 16);
    }
    ta.arrival.length = 1 + (i % 3);
    a.push_back(ta);
  }
  return a;
}

struct RunOutput {
  std::string trace;
  std::string metrics;
  std::string final_snapshot;
  std::uint64_t completed = 0;
  std::uint64_t events = 0;
};

service::ServeConfig make_config(const harness::ExperimentSpec& spec,
                                 const std::string& stem) {
  service::ServeConfig config;
  config.spec = spec;
  config.trace_path = stem + ".trace.jsonl";
  config.metrics_path = stem + ".metrics.jsonl";
  config.metrics_period = 40.0;
  return config;
}

RunOutput finish(service::ServeSession& session,
                 const service::ServeConfig& config) {
  session.drain();
  session.flush_outputs();
  RunOutput out;
  std::ostringstream snap(std::ios::binary);
  session.save_snapshot(snap);
  out.final_snapshot = snap.str();
  const net::Metrics& m = session.engine().metrics();
  out.completed =
      m.tasks_completed[0] + m.tasks_completed[1] + m.tasks_completed[2];
  out.events = session.simulator().events_executed();
  out.trace = read_file(config.trace_path);
  out.metrics = read_file(config.metrics_path);
  return out;
}

RunOutput run_uninterrupted(const ServiceCase& c, const std::string& stem) {
  const service::ServeConfig config = make_config(c.spec, stem);
  service::ServeSession session(config);
  if (c.scripted) session.add_arrivals(scripted_arrivals());
  return finish(session, config);
}

RunOutput run_interrupted(const ServiceCase& c, const std::string& stem) {
  const service::ServeConfig config = make_config(c.spec, stem);
  const std::string snap_path = stem + ".snap.bin";
  {
    service::ServeSession session(config);
    if (c.scripted) session.add_arrivals(scripted_arrivals());
    session.advance(c.cut);
    session.checkpoint(snap_path);
    if (c.expect_open_retries) {
      EXPECT_NE(session.recovery(), nullptr);
      EXPECT_GT(session.recovery()->open_tasks(), 0u)
          << "cut instant was meant to land with retries pending";
    }
    if (c.expect_quarantine_open) {
      EXPECT_NE(session.policer(), nullptr);
      bool open = false;
      const std::int64_t nodes = 16;
      for (topo::NodeId src = 0; src < nodes; ++src) {
        if (session.policer()->quarantine_until(src) > session.now()) {
          open = true;
          break;
        }
      }
      EXPECT_TRUE(open)
          << "cut instant was meant to land inside a quarantine window";
    }
    // Crash tail: keep running past the checkpoint so the output files
    // carry records the restore must discard.
    session.advance(c.cut + c.crash_tail);
    // Destroyed without a second checkpoint == killed.
  }
  service::ServeSession resumed(config, snap_path);
  EXPECT_LE(resumed.now(), c.cut);
  return finish(resumed, config);
}

class ResumeDeterminism : public ::testing::TestWithParam<ServiceCase> {};

TEST_P(ResumeDeterminism, CheckpointKillRestoreIsByteIdentical) {
  const ServiceCase& c = GetParam();
  const std::string dir = ::testing::TempDir();
  const RunOutput ref =
      run_uninterrupted(c, dir + "svc_ref_" + c.label);
  const RunOutput cut = run_interrupted(c, dir + "svc_cut_" + c.label);

  EXPECT_GT(ref.completed, 0u);
  EXPECT_EQ(ref.trace, cut.trace) << "trace bytes diverged after resume";
  EXPECT_EQ(ref.metrics, cut.metrics)
      << "metrics bytes diverged after resume";
  EXPECT_EQ(ref.final_snapshot, cut.final_snapshot)
      << "final engine state diverged after resume";
  EXPECT_EQ(ref.completed, cut.completed);
  EXPECT_EQ(ref.events, cut.events);
}

std::vector<ServiceCase> service_cases() {
  std::vector<ServiceCase> cases;

  {  // 1: plain baseline, calendar scheduler
    ServiceCase c{"base", base_spec()};
    cases.push_back(c);
  }
  {  // 2: heap scheduler backend
    ServiceCase c{"heap", base_spec()};
    c.spec.scheduler = sim::SchedulerKind::kHeap;
    cases.push_back(c);
  }
  {  // 3: random faults + recovery, cut with retries pending
    ServiceCase c{"faults_retries", base_spec()};
    c.spec.rho = 0.7;
    c.spec.fault_mtbf = 150.0;
    c.spec.fault_mttr = 80.0;
    c.spec.max_retries = 5;
    c.spec.seed = 21;
    c.cut = 180.0;
    c.expect_open_retries = true;
    cases.push_back(c);
  }
  {  // 4: overload throttling past saturation
    ServiceCase c{"overload_throttle", base_spec()};
    c.spec.rho = 1.3;
    c.spec.overload.mode = overload::OverloadMode::kThrottle;
    cases.push_back(c);
  }
  {  // 5: overload shedding + full link metrics + wait histograms
    ServiceCase c{"overload_shed_metrics", base_spec()};
    c.spec.rho = 1.3;
    c.spec.overload.mode = overload::OverloadMode::kShed;
    c.spec.collect_link_metrics = true;
    c.spec.record_histograms = true;
    cases.push_back(c);
  }
  {  // 6: closed-loop adaptive balancing (epoch timer + re-solved x)
    ServiceCase c{"adaptive", base_spec()};
    c.spec.rho = 0.6;
    c.spec.broadcast_fraction = 0.7;
    c.spec.adaptive.mode = routing::AdaptiveMode::kPeriodic;
    c.spec.adaptive.interval = 60.0;
    c.spec.adaptive.deadband = 0.0;
    c.cut = 200.0;  // past several applied epochs
    cases.push_back(c);
  }
  {  // 7: pulse attack + policing, cut inside a quarantine window
    ServiceCase c{"attack_policing", base_spec()};
    c.spec.rho = 0.6;
    c.spec.attack.kind = adversary::AttackKind::kPulse;
    c.spec.attack.intensity = 3.0;
    c.spec.policing.enabled = true;
    c.spec.seed = 5;
    c.cut = 150.0;
    c.expect_quarantine_open = true;
    cases.push_back(c);
  }
  {  // 8: every subsystem at once, heap scheduler
    ServiceCase c{"everything", base_spec()};
    c.spec.rho = 0.9;
    c.spec.warmup = 100.0;
    c.spec.measure = 400.0;
    c.spec.fault_mtbf = 300.0;
    c.spec.fault_mttr = 50.0;
    c.spec.max_retries = 3;
    c.spec.overload.mode = overload::OverloadMode::kThrottle;
    c.spec.adaptive.mode = routing::AdaptiveMode::kPeriodic;
    c.spec.adaptive.interval = 80.0;
    c.spec.attack.kind = adversary::AttackKind::kStorm;
    c.spec.policing.enabled = true;
    c.spec.scheduler = sim::SchedulerKind::kHeap;
    c.spec.seed = 11;
    c.cut = 250.0;
    cases.push_back(c);
  }
  {  // 9: scripted (DSL-style) arrivals riding on Poisson background
    ServiceCase c{"scripted", base_spec()};
    c.spec.rho = 0.2;
    c.scripted = true;
    c.cut = 60.0;  // scripted arrivals still pending at the cut
    cases.push_back(c);
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    ServiceMatrix, ResumeDeterminism, ::testing::ValuesIn(service_cases()),
    [](const ::testing::TestParamInfo<ServiceCase>& info) {
      return std::string(info.param.label);
    });

// --- Snapshot rejection: wrong version / wrong experiment identity ---

TEST(SnapshotRejection, UnknownVersionNamesBothVersions) {
  const std::string stem = ::testing::TempDir() + "svc_ver";
  const service::ServeConfig config = make_config(base_spec(), stem);
  std::ostringstream snap(std::ios::binary);
  {
    service::ServeSession session(config);
    session.advance(40.0);
    session.save_snapshot(snap);
  }
  std::string bytes = snap.str();
  bytes[8] = static_cast<char>(99);  // version u32 follows the 8-byte magic
  std::istringstream is(bytes, std::ios::binary);
  try {
    service::ServeSession resumed(config, is);
    FAIL() << "version 99 snapshot was accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("99"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(service::kSnapshotVersion)),
              std::string::npos)
        << msg;
  }
}

TEST(SnapshotRejection, BadMagicIsRefused) {
  const service::ServeConfig config =
      make_config(base_spec(), ::testing::TempDir() + "svc_magic");
  std::istringstream is("definitely not a snapshot", std::ios::binary);
  EXPECT_THROW(service::ServeSession(config, is), std::runtime_error);
}

TEST(SnapshotRejection, IdentityMismatchNamesBothValues) {
  const std::string stem = ::testing::TempDir() + "svc_ident";
  const service::ServeConfig config = make_config(base_spec(), stem);
  std::ostringstream snap(std::ios::binary);
  {
    service::ServeSession session(config);
    session.advance(40.0);
    session.save_snapshot(snap);
  }
  {  // different seed
    service::ServeConfig other = config;
    other.spec.seed = 12345;
    std::istringstream is(snap.str(), std::ios::binary);
    try {
      service::ServeSession resumed(other, is);
      FAIL() << "seed-mismatched snapshot was accepted";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("seed"), std::string::npos) << msg;
      EXPECT_NE(msg.find("7"), std::string::npos) << msg;
      EXPECT_NE(msg.find("12345"), std::string::npos) << msg;
    }
  }
  {  // different topology
    service::ServeConfig other = config;
    other.spec.shape = topo::Shape{8, 8};
    std::istringstream is(snap.str(), std::ios::binary);
    try {
      service::ServeSession resumed(other, is);
      FAIL() << "shape-mismatched snapshot was accepted";
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("4x4"), std::string::npos) << msg;
      EXPECT_NE(msg.find("8x8"), std::string::npos) << msg;
    }
  }
  {  // different scheduler backend
    service::ServeConfig other = config;
    other.spec.scheduler = sim::SchedulerKind::kHeap;
    std::istringstream is(snap.str(), std::ios::binary);
    EXPECT_THROW(service::ServeSession(other, is), std::runtime_error);
  }
}

// --- Rejected configurations ---

TEST(ServeConfigValidation, MulticastAndShardsAreRejected) {
  {
    service::ServeConfig config =
        make_config(base_spec(), ::testing::TempDir() + "svc_rejm");
    config.spec.multicast_fraction = 0.2;
    config.spec.multicast_group = 4;
    EXPECT_THROW(service::ServeSession{config}, std::invalid_argument);
  }
  {
    service::ServeConfig config =
        make_config(base_spec(), ::testing::TempDir() + "svc_rejs");
    config.spec.shards = 2;
    EXPECT_THROW(service::ServeSession{config}, std::invalid_argument);
  }
}

// --- DSL parsing ---

TEST(Dsl, ParsesEveryVerb) {
  service::Command c = service::parse_command("arrive 12.5 unicast 3 9 4");
  EXPECT_EQ(c.kind, service::Command::Kind::kArrive);
  EXPECT_DOUBLE_EQ(c.time, 12.5);
  EXPECT_EQ(c.arrival.kind, net::TaskKind::kUnicast);
  EXPECT_EQ(c.arrival.source, 3);
  EXPECT_EQ(c.arrival.dest, 9);
  EXPECT_EQ(c.arrival.length, 4u);

  c = service::parse_command("arrive 3 broadcast 0");
  EXPECT_EQ(c.arrival.kind, net::TaskKind::kBroadcast);
  EXPECT_EQ(c.arrival.length, 1u);

  c = service::parse_command("run 500");
  EXPECT_EQ(c.kind, service::Command::Kind::kRun);
  EXPECT_DOUBLE_EQ(c.time, 500.0);

  EXPECT_EQ(service::parse_command("drain").kind,
            service::Command::Kind::kDrain);
  c = service::parse_command("checkpoint /tmp/s.bin");
  EXPECT_EQ(c.kind, service::Command::Kind::kCheckpoint);
  EXPECT_EQ(c.path, "/tmp/s.bin");
  EXPECT_EQ(service::parse_command("metrics").kind,
            service::Command::Kind::kMetrics);
  EXPECT_EQ(service::parse_command("quit").kind,
            service::Command::Kind::kQuit);
  EXPECT_EQ(service::parse_command("").kind, service::Command::Kind::kNone);
  EXPECT_EQ(service::parse_command("# comment").kind,
            service::Command::Kind::kNone);
  EXPECT_EQ(service::parse_command("run 10 # trailing").kind,
            service::Command::Kind::kRun);
}

TEST(Dsl, RejectsMalformedLines) {
  EXPECT_THROW(service::parse_command("arrive"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("arrive x broadcast 0"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_command("arrive 5 unicast 3"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_command("arrive 5 teleport 3"),
               std::invalid_argument);
  EXPECT_THROW(service::parse_command("run"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("launch 5"), std::invalid_argument);
  EXPECT_THROW(service::parse_command("arrive 5 broadcast 0 1 2 3"),
               std::invalid_argument);
}

TEST(Dsl, ScriptDrivesASessionEndToEnd) {
  const std::string stem = ::testing::TempDir() + "svc_script";
  service::ServeConfig config = make_config(base_spec(), stem);
  config.spec.rho = 0.0;  // scripted arrivals only
  service::ServeSession session(config);
  std::istringstream script(
      "# demo script\n"
      "arrive 10 broadcast 0\n"
      "arrive 20 unicast 1 14 2\n"
      "run 100\n"
      "metrics\n"
      "drain\n"
      "quit\n"
      "arrive 999 broadcast 0\n");  // never reached
  service::run_script(session, script);
  const net::Metrics& m = session.engine().metrics();
  EXPECT_EQ(m.tasks_completed[0] + m.tasks_completed[1] + m.tasks_completed[2],
            2u);
  EXPECT_EQ(session.pending_arrivals(), 0u);
}

// --- Trace replay ---

TEST(TraceReplay, TaskRecordsBecomeScriptedArrivals) {
  std::istringstream trace(
      "{\"ev\":\"run\",\"schema\":6,\"mode\":\"serve\"}\n"
      "{\"ev\":\"task\",\"t\":5.5,\"task\":0,\"kind\":\"broadcast\","
      "\"src\":3,\"dst\":3,\"len\":2,\"measured\":false}\n"
      "{\"ev\":\"enq\",\"t\":5.5,\"task\":0,\"link\":1,\"prio\":0}\n"
      "{\"ev\":\"task\",\"t\":9.25,\"task\":1,\"kind\":\"unicast\","
      "\"src\":0,\"dst\":12,\"len\":1,\"measured\":true}\n");
  const std::vector<TimedArrival> arrivals =
      service::load_trace_arrivals(trace);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0].time, 5.5);
  EXPECT_EQ(arrivals[0].arrival.kind, net::TaskKind::kBroadcast);
  EXPECT_EQ(arrivals[0].arrival.source, 3);
  EXPECT_EQ(arrivals[0].arrival.length, 2u);
  EXPECT_DOUBLE_EQ(arrivals[1].time, 9.25);
  EXPECT_EQ(arrivals[1].arrival.kind, net::TaskKind::kUnicast);
  EXPECT_EQ(arrivals[1].arrival.dest, 12);
}

TEST(TraceReplay, RejectsFutureSchemaAndMulticast) {
  {
    std::istringstream trace("{\"ev\":\"run\",\"schema\":99}\n");
    EXPECT_THROW(service::load_trace_arrivals(trace), std::runtime_error);
  }
  {
    std::istringstream trace(
        "{\"ev\":\"run\",\"schema\":6}\n"
        "{\"ev\":\"task\",\"t\":1,\"task\":0,\"kind\":\"multicast\","
        "\"src\":0,\"dst\":0,\"len\":1,\"measured\":false}\n");
    EXPECT_THROW(service::load_trace_arrivals(trace), std::runtime_error);
  }
  {  // task before any header
    std::istringstream trace(
        "{\"ev\":\"task\",\"t\":1,\"task\":0,\"kind\":\"unicast\","
        "\"src\":0,\"dst\":1,\"len\":1,\"measured\":false}\n");
    EXPECT_THROW(service::load_trace_arrivals(trace), std::runtime_error);
  }
}

TEST(TraceReplay, RecordedTraceReplaysToSameTaskCount) {
  const std::string stem = ::testing::TempDir() + "svc_replay";
  service::ServeConfig config = make_config(base_spec(), stem);
  std::uint64_t recorded = 0;
  {
    service::ServeSession session(config);
    session.drain();
    const net::Metrics& m = session.engine().metrics();
    recorded =
        m.tasks_completed[0] + m.tasks_completed[1] + m.tasks_completed[2];
  }
  const std::vector<TimedArrival> arrivals =
      service::load_trace_arrivals_file(config.trace_path);
  EXPECT_EQ(arrivals.size(), recorded);

  service::ServeConfig replay_config =
      make_config(base_spec(), stem + "_rerun");
  replay_config.spec.rho = 0.0;  // replayed arrivals only
  service::ServeSession replayed(replay_config);
  replayed.add_arrivals(arrivals);
  replayed.drain();
  const net::Metrics& m = replayed.engine().metrics();
  EXPECT_EQ(m.tasks_completed[0] + m.tasks_completed[1] + m.tasks_completed[2],
            recorded);
}

// --- Trace sink flush satellite ---

TEST(TraceSinkFlush, DestructionLeavesNoTornLastLine) {
  const std::string path = ::testing::TempDir() + "svc_flush.trace.jsonl";
  service::ServeConfig config = make_config(base_spec(), path + ".stem");
  config.trace_path = path;
  {
    service::ServeSession session(config);
    session.advance(100.0);
    // No explicit flush: destruction must leave only complete lines.
  }
  const std::string bytes = read_file(path);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes.back(), '\n');
}

}  // namespace
}  // namespace pstar
