#include "pstar/harness/cli.hpp"

#include <gtest/gtest.h>

namespace pstar::harness {
namespace {

TEST(ParseShape, Basic) {
  EXPECT_EQ(parse_shape("8x8"), (topo::Shape{8, 8}));
  EXPECT_EQ(parse_shape("4x4x8"), (topo::Shape{4, 4, 8}));
  EXPECT_EQ(parse_shape("16"), (topo::Shape{16}));
}

TEST(ParseShape, Rejections) {
  EXPECT_THROW(parse_shape(""), std::invalid_argument);
  EXPECT_THROW(parse_shape("4x"), std::invalid_argument);
  EXPECT_THROW(parse_shape("x4"), std::invalid_argument);
  EXPECT_THROW(parse_shape("4xfoo"), std::invalid_argument);
  EXPECT_THROW(parse_shape("0x4"), std::invalid_argument);
  EXPECT_THROW(parse_shape("-2x4"), std::invalid_argument);
  EXPECT_THROW(parse_shape("4.5x4"), std::invalid_argument);
}

TEST(ParseSweep, RangeForm) {
  const auto v = parse_sweep("0.1:0.5:0.2");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 0.1);
  EXPECT_NEAR(v[1], 0.3, 1e-12);
  EXPECT_NEAR(v[2], 0.5, 1e-12);
}

TEST(ParseSweep, InclusiveUpperBoundDespiteRounding) {
  // 0.1 steps accumulate floating error; the endpoint must still appear.
  const auto v = parse_sweep("0.1:0.9:0.1");
  EXPECT_EQ(v.size(), 9u);
  EXPECT_NEAR(v.back(), 0.9, 1e-9);
}

TEST(ParseSweep, CommaList) {
  const auto v = parse_sweep("0.5,0.8,0.95");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 0.95);
}

TEST(ParseSweep, SingleValue) {
  const auto v = parse_sweep("0.75");
  ASSERT_EQ(v.size(), 1u);
  EXPECT_DOUBLE_EQ(v[0], 0.75);
}

TEST(ParseSweep, Rejections) {
  EXPECT_THROW(parse_sweep("0.1:0.9"), std::invalid_argument);
  EXPECT_THROW(parse_sweep("0.9:0.1:0.1"), std::invalid_argument);
  EXPECT_THROW(parse_sweep("0.1:0.9:0"), std::invalid_argument);
  EXPECT_THROW(parse_sweep("abc"), std::invalid_argument);
  EXPECT_THROW(parse_sweep("0.5,xyz"), std::invalid_argument);
}

TEST(ParseLength, AllForms) {
  EXPECT_EQ(parse_length("unit").kind, traffic::LengthKind::kFixed);
  EXPECT_DOUBLE_EQ(parse_length("unit").mean(), 1.0);
  EXPECT_DOUBLE_EQ(parse_length("fixed:5").mean(), 5.0);
  EXPECT_DOUBLE_EQ(parse_length("geom:3.5").mean(), 3.5);
  const auto b = parse_length("bimodal:1:16:0.25");
  EXPECT_EQ(b.kind, traffic::LengthKind::kBimodal);
  EXPECT_DOUBLE_EQ(b.mean(), 0.75 + 4.0);
}

TEST(ParseLength, Rejections) {
  EXPECT_THROW(parse_length("fixed"), std::invalid_argument);
  EXPECT_THROW(parse_length("fixed:0"), std::invalid_argument);
  EXPECT_THROW(parse_length("geom:0.5"), std::invalid_argument);
  EXPECT_THROW(parse_length("bimodal:1:16"), std::invalid_argument);
  EXPECT_THROW(parse_length("zipf:2"), std::invalid_argument);
}

TEST(ParseScheme, KnownNames) {
  EXPECT_EQ(parse_scheme("priority-STAR").name, "priority-STAR");
  EXPECT_EQ(parse_scheme("FCFS-direct").balancing, core::Balancing::kUniform);
  EXPECT_EQ(parse_scheme("dim-order").balancing, core::Balancing::kFixedOrder);
}

TEST(ParseFailLinks, Basic) {
  const auto v = parse_fail_links("3,17,42");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 3);
  EXPECT_EQ(v[1], 17);
  EXPECT_EQ(v[2], 42);
  EXPECT_EQ(parse_fail_links("0").size(), 1u);
}

TEST(ParseFailLinks, Rejections) {
  EXPECT_THROW(parse_fail_links(""), std::invalid_argument);
  EXPECT_THROW(parse_fail_links("3,"), std::invalid_argument);
  EXPECT_THROW(parse_fail_links(",3"), std::invalid_argument);
  EXPECT_THROW(parse_fail_links("-1"), std::invalid_argument);
  EXPECT_THROW(parse_fail_links("3,foo"), std::invalid_argument);
  EXPECT_THROW(parse_fail_links("3.5"), std::invalid_argument);
}

TEST(ParseScheme, UnknownListsRegistry) {
  try {
    parse_scheme("bogus");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("priority-STAR"), std::string::npos);
    EXPECT_NE(msg.find("bogus"), std::string::npos);
  }
}

}  // namespace
}  // namespace pstar::harness
