// Deeper structural invariants: link-graph consistency across arbitrary
// shapes, virtual-channel ordering along tree paths, arc-randomization
// balance, statistical RNG quality, and strict-priority starvation
// semantics.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <vector>

#include "pstar/net/engine.hpp"
#include "pstar/routing/sdc_broadcast.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"
#include "pstar/topology/torus.hpp"

namespace pstar {
namespace {

using topo::Dir;
using topo::Shape;
using topo::Torus;

//----------------------------------------------------------------------
// Link-graph consistency for tori, meshes, and cylinders.
//----------------------------------------------------------------------

struct GraphCase {
  Shape shape;
  std::vector<bool> wrap;  // empty = all wrap
};

class LinkGraph : public ::testing::TestWithParam<GraphCase> {};

TEST_P(LinkGraph, EveryLinkListedExactlyOnceAsOutgoing) {
  const GraphCase& c = GetParam();
  const Torus t = c.wrap.empty() ? Torus(c.shape) : Torus(c.shape, c.wrap);
  std::vector<int> seen(static_cast<std::size_t>(t.link_count()), 0);
  for (topo::NodeId n = 0; n < t.node_count(); ++n) {
    for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
      const topo::LinkId plus = t.link(n, dim, Dir::kPlus);
      const topo::LinkId minus = t.link(n, dim, Dir::kMinus);
      if (plus != topo::kInvalidLink) ++seen[static_cast<std::size_t>(plus)];
      if (minus != topo::kInvalidLink && minus != plus) {
        ++seen[static_cast<std::size_t>(minus)];
      }
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST_P(LinkGraph, InDegreeEqualsOutDegreePerNode) {
  // Links come in +/- pairs along each dimension, so every node's
  // in-degree equals its out-degree in tori AND meshes.
  const GraphCase& c = GetParam();
  const Torus t = c.wrap.empty() ? Torus(c.shape) : Torus(c.shape, c.wrap);
  std::map<topo::NodeId, int> in, out;
  for (topo::LinkId id = 0; id < t.link_count(); ++id) {
    ++out[t.info(id).from];
    ++in[t.info(id).to];
  }
  for (topo::NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(in[n], out[n]) << "node " << n;
  }
}

TEST_P(LinkGraph, LinksInDimSumsToLinkCount) {
  const GraphCase& c = GetParam();
  const Torus t = c.wrap.empty() ? Torus(c.shape) : Torus(c.shape, c.wrap);
  std::int32_t total = 0;
  for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
    total += t.links_in_dim(dim);
  }
  EXPECT_EQ(total, t.link_count());
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, LinkGraph,
    ::testing::Values(GraphCase{Shape{8, 8}, {}},
                      GraphCase{Shape{4, 8}, {}},
                      GraphCase{Shape{3, 4, 5}, {}},
                      GraphCase{Shape{2, 2, 2}, {}},
                      GraphCase{Shape{5, 5}, {false, false}},
                      GraphCase{Shape{4, 6}, {true, false}},
                      GraphCase{Shape{2, 7}, {false, true}},
                      GraphCase{Shape{1, 4, 2}, {}}),
    [](const auto& info) {
      std::string name = info.param.shape.to_string();
      for (char& c : name) {
        if (c == 'x') c = '_';
      }
      if (!info.param.wrap.empty()) {
        name += "_w";
        for (bool w : info.param.wrap) name += w ? '1' : '0';
      }
      return name;
    });

//----------------------------------------------------------------------
// Virtual channels along tree paths never step backwards (VC1 -> VC2
// only), which is the structure behind the paper's deadlock-freedom
// claim for the two-channel SDC broadcast.
//----------------------------------------------------------------------

TEST(VirtualChannels, MonotoneAlongEveryTreePath) {
  for (const Shape& shape : {Shape{5, 5}, Shape{4, 8}, Shape{3, 4, 5}}) {
    const Torus t(shape);
    for (std::int32_t l = 0; l < t.dims(); ++l) {
      std::map<topo::NodeId, std::uint8_t> vc_at;
      vc_at[0] = 0;
      for (const auto& e : routing::build_sdc_tree(t, 0, l)) {
        ASSERT_TRUE(vc_at.count(e.from));
        EXPECT_GE(e.vc, vc_at[e.from])
            << shape.to_string() << " l=" << l << " edge to " << e.to;
        vc_at[e.to] = e.vc;
      }
    }
  }
}

//----------------------------------------------------------------------
// Randomized long-arc direction balances + and - links of even rings.
//----------------------------------------------------------------------

TEST(ArcRandomization, BalancesDirectionsInExpectation) {
  const Torus t(Shape{8, 8});
  sim::Rng rng(37);
  std::int64_t plus = 0, minus = 0;
  for (int rep = 0; rep < 400; ++rep) {
    for (const auto& e : routing::build_sdc_tree(t, 0, 1, &rng)) {
      (e.dir == Dir::kPlus ? plus : minus) += 1;
    }
  }
  const double ratio = static_cast<double>(plus) / static_cast<double>(minus);
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.05);
}

TEST(ArcRandomization, DeterministicWithoutRng) {
  const Torus t(Shape{8, 8});
  const auto a = routing::build_sdc_tree(t, 3, 0);
  const auto b = routing::build_sdc_tree(t, 3, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to, b[i].to);
    EXPECT_EQ(a[i].dir, b[i].dir);
  }
  // Long arcs deterministically go +: more + than - edges on even rings.
  std::int64_t plus = 0, minus = 0;
  for (const auto& e : a) (e.dir == Dir::kPlus ? plus : minus) += 1;
  EXPECT_GT(plus, minus);
}

//----------------------------------------------------------------------
// RNG statistical quality: chi-square uniformity.
//----------------------------------------------------------------------

TEST(RngQuality, BelowPassesChiSquare) {
  sim::Rng rng(101);
  constexpr int kBins = 16;
  constexpr int kSamples = 160000;
  std::array<int, kBins> counts{};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBins)];
  double chi2 = 0.0;
  const double expect = static_cast<double>(kSamples) / kBins;
  for (int c : counts) {
    chi2 += (c - expect) * (c - expect) / expect;
  }
  // 15 degrees of freedom: 99.9th percentile ~ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(RngQuality, UniformPairsUncorrelated) {
  sim::Rng rng(102);
  double sum_xy = 0.0, sum_x = 0.0, sum_y = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform();
    const double y = rng.uniform();
    sum_xy += x * y;
    sum_x += x;
    sum_y += y;
  }
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  EXPECT_NEAR(cov, 0.0, 0.002);  // |corr| < ~0.024
}

//----------------------------------------------------------------------
// Strict priority really starves: a saturating HIGH stream blocks LOW
// indefinitely (the cost side of the discipline, stated plainly).
//----------------------------------------------------------------------

TEST(Starvation, ContinuousHighStreamBlocksLow) {
  const Torus t(Shape{4, 4});
  sim::Simulator sim;
  sim::Rng rng(103);

  class NullPolicy : public net::RoutingPolicy {
   public:
    void on_task(net::Engine&, net::TaskId, topo::NodeId) override {}
    void on_receive(net::Engine&, topo::NodeId, const net::Copy&) override {}
  } policy;

  net::Engine engine(sim, t, policy, rng);
  engine.begin_measurement();
  const net::TaskId id =
      engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);

  net::Copy low;
  low.task = id;
  low.prio = net::Priority::kLow;
  net::Copy high;
  high.task = id;
  high.prio = net::Priority::kHigh;

  engine.send(0, 0, Dir::kPlus, high);  // seize the link
  engine.send(0, 0, Dir::kPlus, low);   // queued at t=0
  // Keep one HIGH copy always queued for the first 50 time units.
  for (int k = 0; k < 50; ++k) {
    sim.at(static_cast<double>(k) + 0.5, [&engine, high](sim::Simulator&) {
      engine.send(0, 0, Dir::kPlus, high);
    });
  }
  sim.run();
  // The LOW copy waited out all 51 HIGH transmissions.
  EXPECT_DOUBLE_EQ(engine.metrics().wait_by_class[2].max(), 51.0);
  EXPECT_EQ(engine.metrics().transmissions_by_class[0], 51u);
  EXPECT_EQ(engine.metrics().transmissions_by_class[2], 1u);
}

}  // namespace
}  // namespace pstar
