// Property tests for the statistics underlying replication aggregation:
// RunningStat::merge must behave like pooling the raw samples (so shard
// order and grouping cannot change a batch result), Histogram::merge
// must preserve counts and quantile bounds, and the across-replication
// CI must shrink like 1/sqrt(R) while staying distinct from the
// within-run CI.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "pstar/harness/experiment.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/stats/histogram.hpp"
#include "pstar/stats/running.hpp"

namespace pstar::stats {
namespace {

std::vector<double> random_samples(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(-5.0, 20.0));
  return xs;
}

RunningStat accumulate(const std::vector<double>& xs) {
  RunningStat s;
  for (double x : xs) s.add(x);
  return s;
}

void expect_same_moments(const RunningStat& a, const RunningStat& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_NEAR(a.mean(), b.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), b.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
}

TEST(RunningStatMerge, EqualsPooledSamples) {
  const auto xs = random_samples(1, 257);
  const auto ys = random_samples(2, 64);
  auto pooled_samples = xs;
  pooled_samples.insert(pooled_samples.end(), ys.begin(), ys.end());

  RunningStat merged = accumulate(xs);
  merged.merge(accumulate(ys));
  expect_same_moments(merged, accumulate(pooled_samples));
}

TEST(RunningStatMerge, Commutative) {
  const auto xs = random_samples(3, 100);
  const auto ys = random_samples(4, 31);
  RunningStat ab = accumulate(xs);
  ab.merge(accumulate(ys));
  RunningStat ba = accumulate(ys);
  ba.merge(accumulate(xs));
  expect_same_moments(ab, ba);
}

TEST(RunningStatMerge, Associative) {
  const auto xs = random_samples(5, 40);
  const auto ys = random_samples(6, 7);
  const auto zs = random_samples(7, 111);

  RunningStat left = accumulate(xs);       // (x + y) + z
  left.merge(accumulate(ys));
  left.merge(accumulate(zs));

  RunningStat yz = accumulate(ys);         // x + (y + z)
  yz.merge(accumulate(zs));
  RunningStat right = accumulate(xs);
  right.merge(yz);

  expect_same_moments(left, right);
}

TEST(RunningStatMerge, EmptyIsIdentity) {
  const auto xs = random_samples(8, 50);
  RunningStat s = accumulate(xs);
  s.merge(RunningStat{});
  expect_same_moments(s, accumulate(xs));

  RunningStat e;
  e.merge(accumulate(xs));
  expect_same_moments(e, accumulate(xs));

  RunningStat both;
  both.merge(RunningStat{});
  EXPECT_TRUE(both.empty());
  EXPECT_DOUBLE_EQ(both.mean(), 0.0);
}

TEST(RunningStatMerge, ManyShardsMatchSerial) {
  // Split one sample stream into uneven shards, merge in order; any
  // grouping must reproduce the serial accumulation.
  const auto xs = random_samples(9, 1000);
  RunningStat merged;
  std::size_t at = 0;
  for (std::size_t shard_size : {1u, 17u, 0u, 300u, 682u}) {
    RunningStat shard;
    for (std::size_t i = 0; i < shard_size && at < xs.size(); ++i) {
      shard.add(xs[at++]);
    }
    merged.merge(shard);
  }
  expect_same_moments(merged, accumulate(xs));
}

TEST(StudentTCi, WiderThanNormalForFewRuns) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  // df = 3 -> t = 3.182 vs z = 1.96.
  EXPECT_GT(s.ci95_half_width_t(), s.ci95_half_width());
  EXPECT_NEAR(s.ci95_half_width_t() / s.std_error(), 3.182, 1e-3);
}

TEST(StudentTCi, ApproachesNormalForManyRuns) {
  RunningStat s;
  sim::Rng rng(10);
  for (int i = 0; i < 200; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.ci95_half_width_t(), s.ci95_half_width(), 1e-12);
}

TEST(StudentTCi, ZeroBelowTwoObservations) {
  RunningStat s;
  EXPECT_DOUBLE_EQ(s.ci95_half_width_t(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width_t(), 0.0);
}

TEST(HistogramMerge, PreservesCountsAndBuckets) {
  Histogram a(0.5, 20), b(0.5, 20);
  sim::Rng rng(11);
  for (int i = 0; i < 500; ++i) a.add(rng.uniform(0.0, 12.0));
  for (int i = 0; i < 300; ++i) b.add(rng.uniform(0.0, 9.0));

  Histogram pooled(0.5, 20);
  {
    // Rebuild the pooled distribution from scratch for comparison.
    sim::Rng replay(11);
    for (int i = 0; i < 500; ++i) pooled.add(replay.uniform(0.0, 12.0));
    for (int i = 0; i < 300; ++i) pooled.add(replay.uniform(0.0, 9.0));
  }

  a.merge(b);
  EXPECT_EQ(a.total(), 800u);
  EXPECT_EQ(a.total(), pooled.total());
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), pooled.bucket(i)) << "bucket " << i;
  }
  EXPECT_EQ(a.overflow(), pooled.overflow());
  for (double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), pooled.quantile(q));
  }
}

TEST(HistogramMerge, QuantileBoundedByParts) {
  // The pooled q-quantile cannot escape the interval spanned by the two
  // parts' q-quantiles.
  Histogram low(1.0, 50), high(1.0, 50);
  sim::Rng rng(12);
  for (int i = 0; i < 400; ++i) low.add(rng.uniform(0.0, 10.0));
  for (int i = 0; i < 400; ++i) high.add(rng.uniform(20.0, 40.0));
  for (double q : {0.25, 0.5, 0.75, 0.95}) {
    const double lo = low.quantile(q);
    const double hi = high.quantile(q);
    Histogram merged(1.0, 50);
    merged.merge(low);
    merged.merge(high);
    const double m = merged.quantile(q);
    EXPECT_GE(m, lo) << "q=" << q;
    EXPECT_LE(m, hi) << "q=" << q;
  }
}

TEST(HistogramMerge, EmptyIsIdentity) {
  Histogram a(0.25, 8), empty(0.25, 8);
  a.add(0.3);
  a.add(1.9);
  a.merge(empty);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_EQ(a.bucket(1), 1u);
}

TEST(HistogramMerge, RejectsGeometryMismatch) {
  Histogram a(0.5, 10);
  EXPECT_THROW(a.merge(Histogram(0.5, 11)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.25, 10)), std::invalid_argument);
}

}  // namespace
}  // namespace pstar::stats

namespace pstar::harness {
namespace {

/// Synthetic per-run results with per-run means drawn from a known
/// distribution -- isolates the aggregation math from the simulator.
std::vector<ExperimentResult> synthetic_runs(std::uint64_t seed,
                                             std::size_t n, double spread) {
  sim::Rng rng(seed);
  std::vector<ExperimentResult> runs(n);
  for (auto& r : runs) {
    r.reception_delay_mean = 10.0 + rng.uniform(-spread, spread);
    r.reception_delay_ci95 = 0.05;  // tight within-run bars
    r.broadcast_delay_mean = 20.0 + rng.uniform(-spread, spread);
    r.unicast_delay_mean = 5.0 + rng.uniform(-spread, spread);
  }
  return runs;
}

TEST(AggregateReplications, CiShrinksLikeInverseSqrtR) {
  // With per-run means of fixed spread, the across-replication CI must
  // shrink ~1/sqrt(R): t_R * s / sqrt(R).  Compare R vs 4R: expect about
  // a factor 2, loosened for the t-quantile change and sampling noise.
  const auto small = aggregate_replications(synthetic_runs(1, 8, 2.0));
  const auto large = aggregate_replications(synthetic_runs(1, 32, 2.0));
  ASSERT_GT(small.reception_delay_ci95_rep, 0.0);
  ASSERT_GT(large.reception_delay_ci95_rep, 0.0);
  const double ratio =
      small.reception_delay_ci95_rep / large.reception_delay_ci95_rep;
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 3.4);
}

TEST(AggregateReplications, WithinAndAcrossCisAreDistinct) {
  const auto agg = aggregate_replications(synthetic_runs(2, 12, 2.0));
  // Within-run bars were set to 0.05; across-run spread is ~2 units.
  EXPECT_NEAR(agg.reception_delay_ci95_within, 0.05, 1e-12);
  EXPECT_GT(agg.reception_delay_ci95_rep, 10.0 * agg.reception_delay_ci95_within);
}

TEST(AggregateReplications, MeanOfRunMeans) {
  const auto runs = synthetic_runs(3, 5, 1.0);
  double manual = 0.0;
  for (const auto& r : runs) manual += r.reception_delay_mean;
  manual /= static_cast<double>(runs.size());
  const auto agg = aggregate_replications(runs);
  EXPECT_EQ(agg.stable_runs, runs.size());
  EXPECT_NEAR(agg.reception_delay_mean, manual, 1e-12);
}

TEST(AggregateReplications, FlagsOrReducedAndCountersSummed) {
  auto runs = synthetic_runs(4, 4, 1.0);
  runs[1].unstable = true;
  runs[1].drops = 7;
  runs[3].saturated = true;
  runs[3].drops = 5;
  runs[0].events_processed = 100;
  runs[2].events_processed = 250;
  const auto agg = aggregate_replications(runs);
  EXPECT_TRUE(agg.any_unstable);
  EXPECT_TRUE(agg.any_saturated);
  EXPECT_TRUE(agg.any_dropped);
  EXPECT_EQ(agg.drops, 12u);
  EXPECT_EQ(agg.events_processed, 350u);
  // Unstable/saturated runs are excluded from the delay statistics.
  EXPECT_EQ(agg.stable_runs, 2u);
  EXPECT_NEAR(agg.reception_delay_mean,
              (runs[0].reception_delay_mean + runs[2].reception_delay_mean) / 2,
              1e-12);
}

TEST(AggregateReplications, EmptyInput) {
  const auto agg = aggregate_replications({});
  EXPECT_EQ(agg.stable_runs, 0u);
  EXPECT_FALSE(agg.any_unstable);
  EXPECT_DOUBLE_EQ(agg.reception_delay_mean, 0.0);
  EXPECT_DOUBLE_EQ(agg.reception_delay_ci95_rep, 0.0);
  EXPECT_TRUE(agg.runs.empty());
}

}  // namespace
}  // namespace pstar::harness
