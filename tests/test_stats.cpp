#include "pstar/stats/batch_means.hpp"
#include "pstar/stats/histogram.hpp"
#include "pstar/stats/running.hpp"
#include "pstar/stats/time_weighted.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pstar/sim/rng.hpp"

namespace pstar::stats {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStat, MeanAndVarianceMatchManual) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, SingleObservation) {
  RunningStat s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStat, MergeEqualsSequential) {
  sim::Rng rng(7);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10.0, 10.0);
    whole.add(v);
    (i < 400 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, Ci95ShrinksWithSamples) {
  sim::Rng rng(8);
  RunningStat small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(RunningStat, ResetClears) {
  RunningStat s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

TEST(Histogram, CountsFallInCorrectBuckets) {
  Histogram h(1.0, 4);
  h.add(0.5);
  h.add(1.0);   // lands in bucket [1, 2)
  h.add(3.99);
  h.add(100.0);  // overflow
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MedianFromBuckets) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 50; ++i) h.add(1.5);
  for (int i = 0; i < 50; ++i) h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 8.0);
}

TEST(Histogram, InvalidGeometryThrows) {
  EXPECT_THROW(Histogram(0.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(Histogram, QuantileValidatesRange) {
  Histogram h(1.0, 2);
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
}

TEST(BatchMeans, MeanMatchesCompleteBatches) {
  BatchMeans bm(3);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 100.0}) bm.add(v);
  // Two complete batches (means 2 and 5); the trailing 100 is incomplete
  // and excluded.
  EXPECT_EQ(bm.batch_count(), 2u);
  EXPECT_DOUBLE_EQ(bm.mean(), 3.5);
}

TEST(BatchMeans, RejectsZeroBatchLength) {
  EXPECT_THROW(BatchMeans(0), std::invalid_argument);
}

TEST(BatchMeans, IidStreamMatchesRunningStatCi) {
  // On an i.i.d. stream the batch-means CI approximates the i.i.d. CI.
  sim::Rng rng(17);
  BatchMeans bm(100);
  RunningStat rs;
  for (int i = 0; i < 100000; ++i) {
    const double v = rng.uniform();
    bm.add(v);
    rs.add(v);
  }
  EXPECT_NEAR(bm.mean(), rs.mean(), 1e-9);
  EXPECT_NEAR(bm.ci95_half_width(), rs.ci95_half_width(),
              0.3 * rs.ci95_half_width());
}

TEST(BatchMeans, CorrelatedStreamWidensCi) {
  // AR(1)-style stream: the batch-means CI must exceed the (dishonest)
  // i.i.d. CI substantially.
  sim::Rng rng(18);
  BatchMeans bm(200);
  RunningStat rs;
  double state = 0.0;
  for (int i = 0; i < 200000; ++i) {
    state = 0.98 * state + rng.uniform(-1.0, 1.0);
    bm.add(state);
    rs.add(state);
  }
  EXPECT_GT(bm.ci95_half_width(), 2.0 * rs.ci95_half_width());
}

TEST(TimeWeighted, ConstantSignal) {
  TimeWeighted tw;
  tw.start(0.0, 3.0);
  tw.flush(10.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 3.0);
  EXPECT_DOUBLE_EQ(tw.max(), 3.0);
}

TEST(TimeWeighted, StepSignal) {
  TimeWeighted tw;
  tw.start(0.0, 0.0);
  tw.set(4.0, 10.0);  // 0 on [0,4)
  tw.flush(8.0);      // 10 on [4,8)
  EXPECT_DOUBLE_EQ(tw.mean(), 5.0);
  EXPECT_DOUBLE_EQ(tw.max(), 10.0);
  EXPECT_DOUBLE_EQ(tw.elapsed(), 8.0);
}

TEST(TimeWeighted, AddAdjustsCurrent) {
  TimeWeighted tw;
  tw.start(0.0, 1.0);
  tw.add(2.0, +2.0);
  EXPECT_DOUBLE_EQ(tw.current(), 3.0);
  tw.add(4.0, -1.0);
  tw.flush(6.0);
  // 1 on [0,2), 3 on [2,4), 2 on [4,6) -> mean = (2+6+4)/6 = 2.
  EXPECT_DOUBLE_EQ(tw.mean(), 2.0);
}

TEST(TimeWeighted, BackwardsTimeThrows) {
  TimeWeighted tw;
  tw.start(5.0, 1.0);
  EXPECT_THROW(tw.set(4.0, 2.0), std::invalid_argument);
}

TEST(TimeWeighted, ZeroSpanMeanIsZero) {
  TimeWeighted tw;
  tw.start(1.0, 7.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 0.0);
}

TEST(TimeWeighted, LazyStartViaSet) {
  TimeWeighted tw;
  tw.set(3.0, 2.0);  // acts as start
  tw.flush(5.0);
  EXPECT_DOUBLE_EQ(tw.mean(), 2.0);
}

}  // namespace
}  // namespace pstar::stats
