// Tests of the harness layer itself: tables, figure runner output,
// replication, and histogram-backed quantiles.

#include <gtest/gtest.h>

#include <sstream>

#include "pstar/harness/experiment.hpp"
#include "pstar/harness/figure.hpp"
#include "pstar/harness/table.hpp"

namespace pstar::harness {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt(0.0), "0.00");
}

TEST(Table, AlignsColumns) {
  Table t({"a", "bbbb"});
  t.add_row({"xxxxx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, one row.
  EXPECT_NE(out.find("a      bbbb"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  y"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEmission) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os, "CSV,tag");
  EXPECT_EQ(os.str(), "CSV,tag,x,y\nCSV,tag,1,2\n");
}

TEST(Figure, DefaultSweepIsSorted) {
  const auto rhos = default_rho_sweep();
  EXPECT_GE(rhos.size(), 8u);
  for (std::size_t i = 1; i < rhos.size(); ++i) EXPECT_GT(rhos[i], rhos[i - 1]);
  EXPECT_LT(rhos.back(), 1.0);
}

TEST(Figure, MetricSelector) {
  ExperimentResult r;
  r.reception_delay_mean = 1.0;
  r.broadcast_delay_mean = 2.0;
  r.unicast_delay_mean = 3.0;
  EXPECT_DOUBLE_EQ(metric_value(FigureMetric::kReceptionDelay, r), 1.0);
  EXPECT_DOUBLE_EQ(metric_value(FigureMetric::kBroadcastDelay, r), 2.0);
  EXPECT_DOUBLE_EQ(metric_value(FigureMetric::kUnicastDelay, r), 3.0);
}

TEST(Figure, RunFigureEmitsTableAndCsv) {
  FigureSpec spec;
  spec.id = "figX";
  spec.title = "smoke";
  spec.shape = topo::Shape{4, 4};
  spec.schemes = {core::Scheme::priority_star(), core::Scheme::fcfs_direct()};
  spec.rhos = {0.3, 0.6};
  spec.warmup = 100.0;
  spec.measure = 400.0;
  std::ostringstream os;
  const auto results = run_figure(spec, os);
  EXPECT_EQ(results.size(), 4u);  // 2 rhos x 2 schemes
  const std::string out = os.str();
  EXPECT_NE(out.find("== figX: smoke =="), std::string::npos);
  EXPECT_NE(out.find("priority-STAR"), std::string::npos);
  EXPECT_NE(out.find("CSV,figX,0.30"), std::string::npos);
  EXPECT_NE(out.find("CSV,figX,0.60"), std::string::npos);
  EXPECT_NE(out.find("bound"), std::string::npos);
}

TEST(Figure, UnstablePointsRenderAsUnstable) {
  // Dimension-ordered broadcast saturates near 0.56 on an 8x8 torus;
  // a rho = 0.9 sweep point must print "unstable", not a number.
  FigureSpec spec;
  spec.id = "figY";
  spec.title = "saturation rendering";
  spec.shape = topo::Shape{8, 8};
  spec.schemes = {core::Scheme::fixed_order()};
  spec.rhos = {0.3, 0.9};
  spec.warmup = 300.0;
  spec.measure = 1200.0;
  spec.show_lower_bound = false;
  spec.show_model = false;
  std::ostringstream os;
  const auto results = run_figure(spec, os);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].stable_runs, 0u);
  EXPECT_FALSE(results[0].any_unstable || results[0].any_saturated);
  EXPECT_TRUE(results[1].any_unstable || results[1].any_saturated);
  EXPECT_EQ(results[1].stable_runs, 0u);
  EXPECT_NE(os.str().find("unstable"), std::string::npos);
}

TEST(Figure, ModelColumnsOnlyOnBroadcastReceptionFigures) {
  FigureSpec spec;
  spec.id = "figZ";
  spec.title = "model columns";
  spec.shape = topo::Shape{4, 4};
  spec.schemes = {core::Scheme::priority_star()};
  spec.rhos = {0.3};
  spec.warmup = 100.0;
  spec.measure = 300.0;
  std::ostringstream with_model;
  run_figure(spec, with_model);
  EXPECT_NE(with_model.str().find("model-prio"), std::string::npos);

  spec.metric = FigureMetric::kBroadcastDelay;
  std::ostringstream without_model;
  run_figure(spec, without_model);
  EXPECT_EQ(without_model.str().find("model-prio"), std::string::npos);
}

TEST(Replication, AdvancesSeedsAndAggregates) {
  ExperimentSpec spec;
  spec.shape = topo::Shape{4, 4};
  spec.rho = 0.5;
  spec.warmup = 100.0;
  spec.measure = 500.0;
  spec.seed = 9;
  const auto agg = run_replicated(spec, 3);
  ASSERT_EQ(agg.runs.size(), 3u);
  EXPECT_EQ(agg.stable_runs, 3u);
  EXPECT_FALSE(agg.any_unstable);
  // Different seeds -> different sample paths.
  EXPECT_NE(agg.runs[0].transmissions, agg.runs[1].transmissions);
  // The aggregate mean is the mean of the per-run means.
  const double manual = (agg.runs[0].reception_delay_mean +
                         agg.runs[1].reception_delay_mean +
                         agg.runs[2].reception_delay_mean) /
                        3.0;
  EXPECT_NEAR(agg.reception_delay_mean, manual, 1e-12);
  EXPECT_GT(agg.reception_delay_sd, 0.0);
}

TEST(Replication, RejectsZeroRuns) {
  ExperimentSpec spec;
  EXPECT_THROW(run_replicated(spec, 0), std::invalid_argument);
}

TEST(Replication, UnstableRunsExcludedFromStats) {
  ExperimentSpec spec;
  spec.shape = topo::Shape{4, 4};
  spec.rho = 1.5;  // far beyond capacity
  spec.warmup = 100.0;
  spec.measure = 1500.0;
  spec.max_inflight = 10'000;
  const auto agg = run_replicated(spec, 2);
  EXPECT_TRUE(agg.any_unstable);
  EXPECT_EQ(agg.stable_runs, 0u);
  EXPECT_DOUBLE_EQ(agg.reception_delay_mean, 0.0);
}

TEST(Histograms, QuantilesPopulatedOnRequest) {
  ExperimentSpec spec;
  spec.shape = topo::Shape{8, 8};
  spec.rho = 0.7;
  spec.warmup = 200.0;
  spec.measure = 1000.0;
  spec.record_histograms = true;
  const auto r = run_experiment(spec);
  ASSERT_FALSE(r.unstable);
  EXPECT_GT(r.reception_p50, 0.0);
  EXPECT_GE(r.reception_p95, r.reception_p50);
  EXPECT_GE(r.reception_p99, r.reception_p95);
  EXPECT_GT(r.broadcast_p95, r.reception_p95);  // completion is the max
  // The mean sits between the median-ish region and the tail.
  EXPECT_LT(r.reception_delay_mean, r.reception_p95);
}

TEST(Histograms, AbsentByDefault) {
  ExperimentSpec spec;
  spec.shape = topo::Shape{4, 4};
  spec.rho = 0.5;
  spec.warmup = 100.0;
  spec.measure = 400.0;
  const auto r = run_experiment(spec);
  EXPECT_DOUBLE_EQ(r.reception_p95, 0.0);
  EXPECT_DOUBLE_EQ(r.unicast_p99, 0.0);
}

TEST(Experiment, RejectsBadWindows) {
  ExperimentSpec spec;
  spec.warmup = -1.0;
  EXPECT_THROW(run_experiment(spec), std::invalid_argument);
  spec.warmup = 10.0;
  spec.measure = 0.0;
  EXPECT_THROW(run_experiment(spec), std::invalid_argument);
}

TEST(Experiment, ReportsEndingProbabilities) {
  ExperimentSpec spec;
  spec.shape = topo::Shape{4, 8};
  spec.rho = 0.4;
  spec.warmup = 100.0;
  spec.measure = 400.0;
  const auto r = run_experiment(spec);
  ASSERT_EQ(r.ending_probabilities.size(), 2u);
  double total = 0.0;
  for (double x : r.ending_probabilities) total += x;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(r.balanced_feasible);
}

}  // namespace
}  // namespace pstar::harness
