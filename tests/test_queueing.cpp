#include "pstar/queueing/gd1.hpp"
#include "pstar/queueing/throughput.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pstar/topology/torus.hpp"

namespace pstar::queueing {
namespace {

TEST(Gd1, Md1WaitFormula) {
  EXPECT_DOUBLE_EQ(md1_wait(0.0), 0.0);
  EXPECT_DOUBLE_EQ(md1_wait(0.5), 0.5);
  EXPECT_DOUBLE_EQ(md1_wait(0.8), 2.0);
  EXPECT_DOUBLE_EQ(md1_system_time(0.5), 1.5);
}

TEST(Gd1, Md1WaitDivergesNearOne) {
  EXPECT_GT(md1_wait(0.99), 49.0);
  EXPECT_THROW(md1_wait(1.0), std::invalid_argument);
  EXPECT_THROW(md1_wait(-0.1), std::invalid_argument);
}

TEST(Gd1, Gd1WaitWithPoissonVarianceMatchesMd1) {
  // For Poisson arrivals V = rho; the paper's G/D/1 form reduces to
  // rho/(2(1-rho)) - only when V == rho is plugged in:
  //   V/(2 rho (1-rho)) - 1/2 = 1/(2(1-rho)) - 1/2 = rho/(2(1-rho)).
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(gd1_wait(rho, rho), md1_wait(rho), 1e-12);
  }
}

TEST(Gd1, Gd1WaitRejectsBadRho) {
  EXPECT_THROW(gd1_wait(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(gd1_wait(0.1, 1.0), std::invalid_argument);
}

TEST(Gd1, ConservationMixIsWeightedAverage) {
  const std::vector<double> rho{0.2, 0.6};
  const std::vector<double> wait{1.0, 4.0};
  EXPECT_NEAR(conservation_mix(rho, wait), (0.2 * 1.0 + 0.6 * 4.0) / 0.8, 1e-12);
}

TEST(Gd1, PriorityWaitsSatisfyConservation) {
  // Cobham waits must satisfy the conservation law: the rho-weighted mix
  // of class waits equals the FCFS M/D/1 wait.
  for (double rho_h : {0.05, 0.2, 0.4}) {
    for (double rho_l : {0.1, 0.3, 0.5}) {
      if (rho_h + rho_l >= 0.95) continue;
      const TwoClassWait w = md1_priority_wait(rho_h, rho_l);
      const std::vector<double> rhos{rho_h, rho_l};
      const std::vector<double> waits{w.high, w.low};
      EXPECT_NEAR(conservation_mix(rhos, waits), md1_wait(rho_h + rho_l), 1e-12)
          << rho_h << " " << rho_l;
    }
  }
}

TEST(Gd1, HighClassWaitSmallWhenItsLoadIsSmall) {
  // The paper's central observation: with tiny high-priority load the
  // high-priority wait stays O(rho) even as total rho -> 1.
  const TwoClassWait w = md1_priority_wait(0.05, 0.90);
  EXPECT_LT(w.high, 0.6);
  EXPECT_GT(w.low, 5.0);
}

TEST(Throughput, GenericFormula) {
  // 64-node network, 256 links, rate 0.1, 10 transmissions per task.
  EXPECT_NEAR(throughput_factor(0.1, 10.0, 64, 256), 0.25, 1e-12);
  EXPECT_THROW(throughput_factor(0.1, 1.0, 4, 0), std::invalid_argument);
}

TEST(Throughput, TorusBroadcastOnly) {
  const topo::Torus t(topo::Shape{8, 8});
  // rho = lambda_b (N-1) / (2d) = lambda_b * 63 / 4.
  EXPECT_NEAR(torus_rho(t, 0.04, 0.0), 0.04 * 63.0 / 4.0, 1e-12);
}

TEST(Throughput, TorusUnicastUsesAverageDistance)
{
  const topo::Torus t(topo::Shape{8, 8});
  const double expected = 0.2 * t.average_distance() / 4.0;
  EXPECT_NEAR(torus_rho(t, 0.0, 0.2), expected, 1e-12);
}

TEST(Throughput, PaperFormulaUsesFloorQuarter) {
  const topo::Torus t(topo::Shape{5, 5});
  // floor(5/4) = 1 per dimension -> sum = 2.
  EXPECT_NEAR(torus_rho_paper(t, 0.0, 0.5), 0.5 * 2.0 / 4.0, 1e-12);
}

TEST(Throughput, HypercubeFormulaMatchesPaper) {
  // rho = lambda_b (2^d - 1)/d + lambda_r (1/2 + 1/(2(2^d - 1))).
  const double rho = hypercube_rho(4, 0.1, 0.2);
  EXPECT_NEAR(rho, 0.1 * 15.0 / 4.0 + 0.2 * (0.5 + 1.0 / 30.0), 1e-12);
}

TEST(Throughput, MeshBroadcastFormulaMatchesPaper) {
  // rho = lambda_b (n^2 - 1) / (4 - 4/n).
  EXPECT_NEAR(mesh_broadcast_rho(4, 0.01), 0.01 * 15.0 / 3.0, 1e-12);
}

TEST(Throughput, DimensionOrderedMaxRho) {
  EXPECT_DOUBLE_EQ(dimension_ordered_max_rho(2), 1.0);
  EXPECT_DOUBLE_EQ(dimension_ordered_max_rho(10), 0.2);
}

TEST(Throughput, LowerBoundShape) {
  EXPECT_NEAR(oblivious_lower_bound(3, 0.0), 4.0, 1e-12);
  EXPECT_NEAR(oblivious_lower_bound(3, 0.5), 5.0, 1e-12);
  EXPECT_GT(oblivious_lower_bound(3, 0.99), 100.0);
}

TEST(Throughput, RatesForRhoRoundTrips) {
  const topo::Torus t(topo::Shape{4, 8});
  for (double rho : {0.2, 0.5, 0.9}) {
    for (double frac : {0.0, 0.3, 0.5, 1.0}) {
      const Rates r = rates_for_rho(t, rho, frac);
      EXPECT_NEAR(torus_rho(t, r.lambda_b, r.lambda_r), rho, 1e-12)
          << "rho=" << rho << " frac=" << frac;
      // The broadcast share of the load matches the request.
      const double bcast_load =
          r.lambda_b * static_cast<double>(t.node_count() - 1) / t.degree();
      EXPECT_NEAR(bcast_load, frac * rho, 1e-12);
    }
  }
}

TEST(Throughput, RatesForRhoValidatesInput) {
  const topo::Torus t(topo::Shape{4, 4});
  EXPECT_THROW(rates_for_rho(t, -1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(rates_for_rho(t, 0.5, 1.5), std::invalid_argument);
}

TEST(Throughput, AsymmetricTorusSeparateSchemesLoseThroughput) {
  // Section 1's motivating example: n1 = ... = n_{d-1} = n_d / 2 with a
  // 50/50 load split.  If unicast alone loads the longest dimension's
  // links proportionally to n_i, the longest dimension saturates first;
  // a balanced scheme spreads broadcast onto the short dimensions.
  const topo::Torus t(topo::Shape{4, 8});
  const Rates r = rates_for_rho(t, 1.0, 0.5);
  // Unbalanced: put broadcast uniformly (x = 1/2, 1/2).  Dimension-1
  // links carry lambda_r * m_1 / 2 unicast load; with the uniform
  // broadcast that dimension exceeds the average load of 0.5.
  const double m1 = t.mean_hops(1);
  const double unicast_dim1 = r.lambda_r * m1 / 2.0;
  const double unicast_dim0 = r.lambda_r * t.mean_hops(0) / 2.0;
  EXPECT_GT(unicast_dim1, unicast_dim0);
}

}  // namespace
}  // namespace pstar::queueing
