#include "pstar/topology/ring.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace pstar::topo {
namespace {

TEST(Ring, DistanceBasics) {
  EXPECT_EQ(ring_distance(0, 0, 5), 0);
  EXPECT_EQ(ring_distance(0, 1, 5), 1);
  EXPECT_EQ(ring_distance(0, 4, 5), 1);  // wraparound is shorter
  EXPECT_EQ(ring_distance(0, 2, 5), 2);
  EXPECT_EQ(ring_distance(1, 3, 4), 2);
}

TEST(Ring, DistanceIsSymmetric) {
  for (std::int32_t n = 1; n <= 9; ++n) {
    for (std::int32_t a = 0; a < n; ++a) {
      for (std::int32_t b = 0; b < n; ++b) {
        EXPECT_EQ(ring_distance(a, b, n), ring_distance(b, a, n));
      }
    }
  }
}

TEST(Ring, OffsetMagnitudeMatchesDistance) {
  for (std::int32_t n = 1; n <= 9; ++n) {
    for (std::int32_t a = 0; a < n; ++a) {
      for (std::int32_t b = 0; b < n; ++b) {
        EXPECT_EQ(std::abs(ring_offset(a, b, n)), ring_distance(a, b, n));
      }
    }
  }
}

TEST(Ring, OffsetReachesTarget) {
  for (std::int32_t n = 1; n <= 9; ++n) {
    for (std::int32_t a = 0; a < n; ++a) {
      for (std::int32_t b = 0; b < n; ++b) {
        const std::int32_t off = ring_offset(a, b, n);
        EXPECT_EQ(((a + off) % n + n) % n, b);
      }
    }
  }
}

TEST(Ring, TieOnlyOnEvenRingsAtHalf) {
  EXPECT_TRUE(ring_tie(0, 2, 4));
  EXPECT_TRUE(ring_tie(1, 5, 8));
  EXPECT_FALSE(ring_tie(0, 1, 4));
  EXPECT_FALSE(ring_tie(0, 2, 5));
  EXPECT_FALSE(ring_tie(0, 0, 4));
}

TEST(Ring, TiePrefersPositiveOffset) {
  EXPECT_EQ(ring_offset(0, 2, 4), 2);
  EXPECT_EQ(ring_offset(3, 1, 4), 2);
}

TEST(Ring, MeanDistanceEvenIsQuarter) {
  EXPECT_DOUBLE_EQ(ring_mean_distance(4), 1.0);
  EXPECT_DOUBLE_EQ(ring_mean_distance(8), 2.0);
  EXPECT_DOUBLE_EQ(ring_mean_distance(16), 4.0);
  EXPECT_DOUBLE_EQ(ring_mean_distance(2), 0.5);
}

TEST(Ring, MeanDistanceOddFormula) {
  EXPECT_DOUBLE_EQ(ring_mean_distance(5), 24.0 / 20.0);
  EXPECT_DOUBLE_EQ(ring_mean_distance(3), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(ring_mean_distance(1), 0.0);
}

TEST(Ring, MeanDistanceMatchesBruteForce) {
  for (std::int32_t n = 1; n <= 12; ++n) {
    double total = 0.0;
    for (std::int32_t k = 0; k < n; ++k) total += ring_distance(0, k, n);
    EXPECT_DOUBLE_EQ(ring_mean_distance(n), total / n) << "n=" << n;
  }
}

TEST(Ring, PaperMeanIsFloorQuarter) {
  EXPECT_EQ(ring_mean_distance_paper(8), 2);
  EXPECT_EQ(ring_mean_distance_paper(5), 1);
  EXPECT_EQ(ring_mean_distance_paper(3), 0);
  EXPECT_EQ(ring_mean_distance_paper(16), 4);
}

TEST(Ring, ArcsPartitionTheRing) {
  for (std::int32_t n = 2; n <= 12; ++n) {
    EXPECT_EQ(ring_long_arc(n) + ring_short_arc(n), n - 1) << "n=" << n;
    EXPECT_GE(ring_long_arc(n), ring_short_arc(n));
    EXPECT_LE(ring_long_arc(n) - ring_short_arc(n), 1);
  }
}

TEST(Ring, ArcValues) {
  EXPECT_EQ(ring_long_arc(5), 2);
  EXPECT_EQ(ring_short_arc(5), 2);
  EXPECT_EQ(ring_long_arc(8), 4);
  EXPECT_EQ(ring_short_arc(8), 3);
  EXPECT_EQ(ring_long_arc(2), 1);
  EXPECT_EQ(ring_short_arc(2), 0);
}

}  // namespace
}  // namespace pstar::topo
