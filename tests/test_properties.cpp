// Parameterized property sweeps across torus shapes and schemes: the
// structural invariants every routing configuration must satisfy, checked
// end-to-end through the simulator.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "pstar/core/policy_factory.hpp"
#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/queueing/throughput.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar {
namespace {

using topo::Shape;
using topo::Torus;

//----------------------------------------------------------------------
// Per-shape invariants of a single broadcast executed on an idle network.
//----------------------------------------------------------------------

class BroadcastInvariants : public ::testing::TestWithParam<Shape> {};

TEST_P(BroadcastInvariants, EveryNodeReceivesExactlyOnce) {
  const Torus torus(GetParam());
  auto policy = core::make_policy(torus, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  sim::Rng rng(5);
  net::Engine engine(sim, torus, *policy, rng);
  engine.begin_measurement();
  const auto n = torus.node_count();
  for (int rep = 0; rep < 8; ++rep) {
    const auto source = static_cast<topo::NodeId>(rng.below(
        static_cast<std::uint64_t>(n)));
    engine.create_task(net::TaskKind::kBroadcast, source, source, 1);
    sim.run();
    EXPECT_EQ(engine.inflight_copies(), 0u);
  }
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[0], 8u);
  // Exactly N-1 transmissions per broadcast: the minimum possible.
  EXPECT_EQ(m.transmissions, 8u * static_cast<std::uint64_t>(n - 1));
}

TEST_P(BroadcastInvariants, IdleNetworkDelayBoundedByArcDepth) {
  const Torus torus(GetParam());
  auto policy = core::make_policy(torus, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  sim::Rng rng(6);
  net::Engine engine(sim, torus, *policy, rng);
  engine.begin_measurement();
  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  sim.run();
  double depth = 0.0;
  for (std::int32_t i = 0; i < torus.dims(); ++i) {
    depth += topo::ring_long_arc(torus.shape().size(i));
  }
  if (torus.node_count() > 1) {
    EXPECT_DOUBLE_EQ(engine.metrics().broadcast_delay.mean(), depth);
    EXPECT_GE(engine.metrics().broadcast_delay.mean(),
              static_cast<double>(torus.diameter()));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BroadcastInvariants,
                         ::testing::Values(Shape{5, 5}, Shape{8, 8},
                                           Shape{4, 8}, Shape{16, 16},
                                           Shape{3, 4, 5}, Shape{8, 8, 8},
                                           Shape{2, 2, 2, 2, 2}, Shape{2, 6},
                                           Shape{9}, Shape{1, 5},
                                           Shape{4, 1, 6}),
                         [](const auto& info) {
                           std::string name = info.param.to_string();
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name;
                         });

//----------------------------------------------------------------------
// Scheme x load stability matrix.
//----------------------------------------------------------------------

struct SchemePoint {
  const char* scheme;
  double rho;
  double fraction;
};

class SchemeStability : public ::testing::TestWithParam<SchemePoint> {
 protected:
  static core::Scheme scheme_by_name(const std::string& name) {
    if (name == "priority-STAR") return core::Scheme::priority_star();
    if (name == "priority-STAR-3c")
      return core::Scheme::priority_star_three_class();
    if (name == "STAR-FCFS") return core::Scheme::star_fcfs();
    if (name == "FCFS-direct") return core::Scheme::fcfs_direct();
    if (name == "priority-direct") return core::Scheme::priority_direct();
    throw std::invalid_argument("unknown scheme " + name);
  }
};

TEST_P(SchemeStability, StableBelowSaturationOnSymmetricTorus) {
  const SchemePoint p = GetParam();
  harness::ExperimentSpec spec;
  spec.shape = Shape{6, 6};
  spec.scheme = scheme_by_name(p.scheme);
  spec.rho = p.rho;
  spec.broadcast_fraction = p.fraction;
  spec.warmup = 300.0;
  spec.measure = 900.0;
  spec.seed = 99;
  const harness::ExperimentResult r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable) << p.scheme << " rho=" << p.rho;
  // Utilization tracks the offered load on a symmetric torus for every
  // scheme (all of them are transmission-minimal there).
  EXPECT_NEAR(r.utilization_mean, p.rho, 0.05);
  // Delays are finite and at least one hop.
  if (p.fraction > 0.0) EXPECT_GE(r.reception_delay_mean, 1.0);
  if (p.fraction < 1.0) EXPECT_GE(r.unicast_delay_mean, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeStability,
    ::testing::Values(SchemePoint{"priority-STAR", 0.3, 1.0},
                      SchemePoint{"priority-STAR", 0.8, 1.0},
                      SchemePoint{"priority-STAR", 0.8, 0.5},
                      SchemePoint{"priority-STAR-3c", 0.8, 0.5},
                      SchemePoint{"STAR-FCFS", 0.8, 1.0},
                      SchemePoint{"FCFS-direct", 0.8, 1.0},
                      SchemePoint{"FCFS-direct", 0.5, 0.5},
                      SchemePoint{"priority-direct", 0.8, 1.0},
                      SchemePoint{"priority-STAR", 0.5, 0.0}),
    [](const auto& info) {
      std::string name = info.param.scheme;
      name += "_rho";
      name += std::to_string(static_cast<int>(info.param.rho * 100));
      name += "_f";
      name += std::to_string(static_cast<int>(info.param.fraction * 100));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

//----------------------------------------------------------------------
// Conservation-law check: priority reshuffles waiting time between
// classes but cannot reduce the load-weighted average (service times are
// class-independent for unit packets).
//----------------------------------------------------------------------

TEST(ConservationLaw, PriorityDoesNotChangeWeightedWait) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.rho = 0.85;
  spec.broadcast_fraction = 1.0;
  spec.warmup = 500.0;
  spec.measure = 2500.0;
  spec.seed = 7;

  spec.scheme = core::Scheme::priority_star();
  const auto star = harness::run_experiment(spec);
  spec.scheme = core::Scheme::star_fcfs();
  const auto fcfs = harness::run_experiment(spec);
  ASSERT_FALSE(star.unstable);
  ASSERT_FALSE(fcfs.unstable);

  // Transmission-weighted mean wait under priority STAR...
  double weighted = 0.0;
  double count = 0.0;
  for (std::size_t c = 0; c < net::kPriorityClasses; ++c) {
    weighted += star.wait_mean[c] * static_cast<double>(star.wait_count[c]);
    count += static_cast<double>(star.wait_count[c]);
  }
  weighted /= count;
  // ...must match the FCFS mean wait (all classes collapse to class 0).
  EXPECT_NEAR(weighted, fcfs.wait_mean[0], 0.15 * fcfs.wait_mean[0] + 0.05);
}

//----------------------------------------------------------------------
// The balanced probability vector beats uniform on every asymmetric
// torus we can throw at it (max-utilization is what saturates first).
//----------------------------------------------------------------------

class BalanceSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(BalanceSweep, BalancedVectorMinimizesPredictedPeak) {
  const Torus torus(GetParam());
  const auto rates = queueing::rates_for_rho(torus, 0.7, 0.6);
  const auto balanced = routing::heterogeneous_probabilities(
      torus, rates.lambda_b, rates.lambda_r);
  const auto uniform = routing::uniform_probabilities(torus.dims());
  auto peak = [&](const std::vector<double>& x) {
    double m = 0.0;
    for (double v : routing::predicted_dimension_load(torus, x, rates.lambda_b,
                                                      rates.lambda_r)) {
      m = std::max(m, v);
    }
    return m;
  };
  EXPECT_LE(peak(balanced.x), peak(uniform.x) + 1e-9) << GetParam().to_string();
  if (balanced.feasible && !torus.shape().symmetric()) {
    EXPECT_LT(peak(balanced.x), peak(uniform.x) - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BalanceSweep,
                         ::testing::Values(Shape{4, 8}, Shape{3, 9},
                                           Shape{4, 4, 8}, Shape{2, 4, 8},
                                           Shape{6, 6, 12}, Shape{5, 10},
                                           Shape{8, 8}),
                         [](const auto& info) {
                           std::string name = info.param.to_string();
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace pstar
