#include "pstar/topology/torus.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pstar::topo {
namespace {

TEST(Torus, LinkCountMatchesDegree) {
  for (const Shape& shape :
       {Shape{8, 8}, Shape{4, 8}, Shape{3, 5, 7}, Shape{2, 2, 2}, Shape{1, 6}}) {
    const Torus t(shape);
    EXPECT_EQ(t.link_count(), t.node_count() * t.degree()) << shape.to_string();
  }
}

TEST(Torus, DegreeOfRegularTorusIsTwoD) {
  EXPECT_EQ(Torus(Shape{8, 8}).degree(), 4);
  EXPECT_EQ(Torus(Shape{8, 8, 8}).degree(), 6);
  EXPECT_EQ(Torus(Shape{5}).degree(), 2);
}

TEST(Torus, HypercubeDegreeIsD) {
  EXPECT_EQ(Torus(Shape::hypercube(4)).degree(), 4);
  EXPECT_EQ(Torus(Shape{2, 8}).degree(), 3);
}

TEST(Torus, SizeOneDimensionHasNoLinks) {
  const Torus t(Shape{1, 6});
  EXPECT_EQ(t.links_per_node(0), 0);
  EXPECT_EQ(t.links_per_node(1), 2);
  EXPECT_EQ(t.link(0, 0, Dir::kPlus), kInvalidLink);
}

TEST(Torus, LinkEndpointsAreRingNeighbors) {
  const Torus t(Shape{4, 5});
  for (LinkId id = 0; id < t.link_count(); ++id) {
    const LinkInfo& info = t.info(id);
    const NodeId expect =
        t.shape().neighbor(info.from, info.dim, step_of(info.dir));
    EXPECT_EQ(info.to, expect);
    EXPECT_NE(info.to, info.from);
  }
}

TEST(Torus, LinkLookupIsConsistentWithInfo) {
  const Torus t(Shape{3, 4, 2});
  for (NodeId n = 0; n < t.node_count(); ++n) {
    for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
      for (Dir dir : {Dir::kPlus, Dir::kMinus}) {
        const LinkId id = t.link(n, dim, dir);
        if (t.links_per_node(dim) == 0) {
          EXPECT_EQ(id, kInvalidLink);
          continue;
        }
        ASSERT_NE(id, kInvalidLink);
        EXPECT_EQ(t.info(id).from, n);
        EXPECT_EQ(t.info(id).dim, dim);
      }
    }
  }
}

TEST(Torus, SizeTwoDimensionAliasesDirections) {
  const Torus t(Shape{2, 5});
  for (NodeId n = 0; n < t.node_count(); ++n) {
    EXPECT_EQ(t.link(n, 0, Dir::kPlus), t.link(n, 0, Dir::kMinus));
    EXPECT_NE(t.link(n, 1, Dir::kPlus), t.link(n, 1, Dir::kMinus));
  }
}

TEST(Torus, LinkIdsAreDenseAndUnique) {
  const Torus t(Shape{3, 3});
  std::set<LinkId> seen;
  for (NodeId n = 0; n < t.node_count(); ++n) {
    for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
      for (Dir dir : {Dir::kPlus, Dir::kMinus}) {
        seen.insert(t.link(n, dim, dir));
      }
    }
  }
  EXPECT_EQ(static_cast<std::int32_t>(seen.size()), t.link_count());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), t.link_count() - 1);
}

TEST(Torus, EveryNodeReachableByLinks) {
  // BFS over links from node 0 must reach all nodes.
  const Torus t(Shape{4, 3, 2});
  std::vector<bool> visited(static_cast<std::size_t>(t.node_count()), false);
  std::vector<NodeId> frontier{0};
  visited[0] = true;
  std::int64_t count = 1;
  while (!frontier.empty()) {
    const NodeId at = frontier.back();
    frontier.pop_back();
    for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
      for (Dir dir : {Dir::kPlus, Dir::kMinus}) {
        const LinkId id = t.link(at, dim, dir);
        if (id == kInvalidLink) continue;
        const NodeId to = t.dest(id);
        if (!visited[static_cast<std::size_t>(to)]) {
          visited[static_cast<std::size_t>(to)] = true;
          frontier.push_back(to);
          ++count;
        }
      }
    }
  }
  EXPECT_EQ(count, t.node_count());
}

TEST(Torus, MeanHopsMatchesBruteForce) {
  const Torus t(Shape{4, 5});
  // Brute force: average per-dimension ring distance over all ordered
  // pairs with distinct endpoints.
  for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
    double total = 0.0;
    std::int64_t pairs = 0;
    for (NodeId a = 0; a < t.node_count(); ++a) {
      for (NodeId b = 0; b < t.node_count(); ++b) {
        if (a == b) continue;
        total += ring_distance(t.shape().coord_of(a, dim),
                               t.shape().coord_of(b, dim), t.shape().size(dim));
        ++pairs;
      }
    }
    EXPECT_NEAR(t.mean_hops(dim), total / static_cast<double>(pairs), 1e-12);
  }
}

TEST(Torus, AverageDistanceMatchesBruteForce) {
  const Torus t(Shape{3, 4});
  double total = 0.0;
  std::int64_t pairs = 0;
  for (NodeId a = 0; a < t.node_count(); ++a) {
    for (NodeId b = 0; b < t.node_count(); ++b) {
      if (a == b) continue;
      for (std::int32_t dim = 0; dim < t.dims(); ++dim) {
        total += ring_distance(t.shape().coord_of(a, dim),
                               t.shape().coord_of(b, dim), t.shape().size(dim));
      }
      ++pairs;
    }
  }
  EXPECT_NEAR(t.average_distance(), total / static_cast<double>(pairs), 1e-12);
}

TEST(Torus, HypercubeAverageDistanceIsHalfDimesionScaled) {
  // d-cube: average Hamming distance to another node = d/2 * 2^d/(2^d-1).
  const std::int32_t d = 5;
  const Torus t(Shape::hypercube(d));
  const double n = static_cast<double>(t.node_count());
  EXPECT_NEAR(t.average_distance(), (d / 2.0) * n / (n - 1.0), 1e-12);
}

TEST(Torus, DiameterIsSumOfHalfSizes) {
  EXPECT_EQ(Torus(Shape{8, 8}).diameter(), 8);
  EXPECT_EQ(Torus(Shape{5, 7}).diameter(), 5);
  EXPECT_EQ(Torus(Shape::hypercube(6)).diameter(), 6);
}

}  // namespace
}  // namespace pstar::topo
