#include "pstar/recovery/manager.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/routing/priorities.hpp"
#include "pstar/routing/sdc_broadcast.hpp"
#include "pstar/routing/unicast.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar {
namespace {

using net::Engine;
using net::EngineConfig;
using net::TaskKind;
using topo::Dir;
using topo::Shape;
using topo::Torus;

constexpr double kInf = std::numeric_limits<double>::infinity();

recovery::RecoveryConfig quick_config(std::uint32_t max_retries) {
  recovery::RecoveryConfig rc;
  rc.max_retries = max_retries;
  rc.timeout = 2.0;
  rc.backoff = 1.5;
  rc.jitter = 0.1;
  rc.seed = 42;
  return rc;
}

// ----------------------------------------------------------- construction

TEST(RecoveryConfig, EnabledConfigIsValidated) {
  const Torus torus(Shape{4});
  sim::Simulator sim;
  sim::Rng rng(1);
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = {1.0};
  cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
  routing::SdcBroadcastPolicy policy(torus, cfg);
  Engine engine(sim, torus, policy, rng);

  recovery::RecoveryConfig rc = quick_config(1);
  rc.timeout = 0.0;
  EXPECT_THROW(recovery::RecoveryManager(engine, &policy, nullptr, rc),
               std::invalid_argument);
  rc = quick_config(1);
  rc.backoff = 0.5;
  EXPECT_THROW(recovery::RecoveryManager(engine, &policy, nullptr, rc),
               std::invalid_argument);
  rc = quick_config(1);
  rc.jitter = -1.0;
  EXPECT_THROW(recovery::RecoveryManager(engine, &policy, nullptr, rc),
               std::invalid_argument);
  // max_retries == 0 disables the layer: nothing is validated and the
  // manager never attaches to the engine.
  rc = quick_config(0);
  rc.timeout = 0.0;
  recovery::RecoveryManager disabled(engine, &policy, nullptr, rc);
  EXPECT_EQ(engine.recovery(), nullptr);
}

// ---------------------------------------------------------- engine level

TEST(Recovery, TransientBroadcastLossIsRefloodedFromTheFrontier) {
  // Ring of 4, source 0, link 0 -> 1 down for [0, 5).  The original
  // flood's +arc dies at the engine's door; the layer must wait out the
  // repair (it is scheduled, so no budget burns) and then re-send the
  // exact dropped copy from node 0, recovering every orphan.
  const Torus torus(Shape{4});
  sim::Simulator sim;
  sim::Rng rng(1);
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = {1.0};
  cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
  routing::SdcBroadcastPolicy policy(torus, cfg);
  EngineConfig ecfg;
  ecfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, 5.0});
  Engine engine(sim, torus, policy, rng, ecfg);
  recovery::RecoveryManager mgr(engine, &policy, nullptr, quick_config(3));
  EXPECT_EQ(engine.recovery(), &mgr);
  engine.begin_measurement();
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.reception_delay.count(), 3u);  // every node reached
  EXPECT_EQ(m.lost_receptions, 0u);
  EXPECT_EQ(m.tasks_completed[static_cast<std::size_t>(TaskKind::kBroadcast)],
            1u);
  EXPECT_GE(mgr.stats().retx_subtree, 1u);
  EXPECT_GT(mgr.stats().receptions_recovered, 0u);
  EXPECT_EQ(mgr.stats().tasks_recovered, 1u);
  EXPECT_EQ(mgr.stats().tasks_exhausted, 0u);
  EXPECT_EQ(m.retransmissions, mgr.stats().retransmissions());
  EXPECT_EQ(mgr.open_tasks(), 0u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(Recovery, PermanentCutExhaustsTheBudgetAndFinalizesAsLost) {
  // Link 0 -> 1 never repairs, and on a 4-ring node 1 is only reachable
  // through it: fresh trees burn the budget (each retry drop at the dead
  // link counts) and the task must finalize with node 1 still lost --
  // never hang.
  const Torus torus(Shape{4});
  sim::Simulator sim;
  sim::Rng rng(1);
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = {1.0};
  cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
  routing::SdcBroadcastPolicy policy(torus, cfg);
  EngineConfig ecfg;
  ecfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, kInf});
  Engine engine(sim, torus, policy, rng, ecfg);
  recovery::RecoveryManager mgr(engine, &policy, nullptr, quick_config(2));
  engine.begin_measurement();
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kBroadcast, 0, 0, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(mgr.stats().tasks_exhausted, 1u);
  EXPECT_GE(mgr.stats().retx_fresh, 1u);
  EXPECT_GE(m.lost_receptions, 1u);  // node 1 is unreachable
  EXPECT_EQ(m.tasks_completed[static_cast<std::size_t>(TaskKind::kBroadcast)],
            1u);
  EXPECT_EQ(mgr.open_tasks(), 0u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(Recovery, BlockedUnicastWaitsForTheRepairAndRelaunches) {
  // Both arcs out of node 0 are down for [0, 5): no detour exists, the
  // copy dies at the door, and the layer re-launches it from node 0
  // after the repair instead of failing the task.
  const Torus torus(Shape{4});
  sim::Simulator sim;
  sim::Rng rng(5);
  routing::UnicastPolicy policy(torus, routing::UnicastConfig{});
  EngineConfig ecfg;
  ecfg.faults.scripted.push_back({torus.link(0, 0, Dir::kPlus), 0.0, 5.0});
  ecfg.faults.scripted.push_back({torus.link(0, 0, Dir::kMinus), 0.0, 5.0});
  Engine engine(sim, torus, policy, rng, ecfg);
  recovery::RecoveryManager mgr(engine, nullptr, &policy, quick_config(3));
  engine.begin_measurement();
  sim.at(1.0, [&engine](sim::Simulator&) {
    engine.create_task(TaskKind::kUnicast, 0, 1, 1);
  });
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[static_cast<std::size_t>(TaskKind::kUnicast)],
            1u);
  EXPECT_EQ(m.failed_unicasts, 0u);
  EXPECT_EQ(mgr.stats().retx_unicast, 1u);
  EXPECT_EQ(mgr.stats().tasks_exhausted, 0u);
  EXPECT_EQ(mgr.open_tasks(), 0u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

// --------------------------------------------------------- harness level

TEST(HarnessRecovery, TransientFaultsFullyRecoverDelivery) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.broadcast_fraction = 1.0;
  spec.warmup = 100.0;
  spec.measure = 300.0;
  spec.seed = 23;
  spec.fault_mtbf = 150.0;
  spec.fault_mttr = 30.0;

  const auto degraded = harness::run_experiment(spec);
  ASSERT_GT(degraded.fault_drops, 0u);
  EXPECT_LT(degraded.delivered_fraction, 1.0);
  EXPECT_EQ(degraded.retransmissions, 0u);

  spec.max_retries = 3;
  const auto recovered = harness::run_experiment(spec);
  // Every outage in a renewal schedule is eventually repaired, so the
  // repair-aware budget cannot exhaust and delivery returns to EXACTLY 1.
  EXPECT_DOUBLE_EQ(recovered.delivered_fraction, 1.0);
  EXPECT_EQ(recovered.retries_exhausted, 0u);
  EXPECT_GT(recovered.retransmissions, 0u);
  EXPECT_GT(recovered.receptions_recovered, 0u);
  EXPECT_GT(recovered.tasks_recovered, 0u);
  EXPECT_EQ(recovered.stop_reason, sim::StopReason::kDrained);
}

TEST(HarnessRecovery, TransientFaultsFullyRecoverUnicasts) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.broadcast_fraction = 0.0;  // unicast-only workload
  spec.warmup = 100.0;
  spec.measure = 300.0;
  spec.seed = 23;
  spec.fault_mtbf = 150.0;
  spec.fault_mttr = 30.0;
  spec.max_retries = 3;
  const auto r = harness::run_experiment(spec);
  EXPECT_DOUBLE_EQ(r.delivered_fraction, 1.0);
  EXPECT_EQ(r.retries_exhausted, 0u);
  EXPECT_EQ(r.stop_reason, sim::StopReason::kDrained);
}

TEST(HarnessRecovery, FaultFreeRunIsBitIdenticalWithRecoveryEnabled) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.warmup = 100.0;
  spec.measure = 300.0;
  spec.seed = 7;
  const auto base = harness::run_experiment(spec);
  spec.max_retries = 3;
  const auto with_recovery = harness::run_experiment(spec);
  // Timers are armed lazily at the first loss, so a fault-free run
  // schedules no recovery event and draws nothing from the layer's rng.
  EXPECT_EQ(with_recovery.retransmissions, 0u);
  EXPECT_EQ(base.events_processed, with_recovery.events_processed);
  EXPECT_EQ(base.transmissions, with_recovery.transmissions);
  EXPECT_EQ(base.reception_delay_mean, with_recovery.reception_delay_mean);
  EXPECT_EQ(base.broadcast_delay_mean, with_recovery.broadcast_delay_mean);
  EXPECT_EQ(base.delivered_fraction, with_recovery.delivered_fraction);
}

TEST(HarnessRecovery, RecoveryRunsAreBitIdenticalAcrossRepeats) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.warmup = 100.0;
  spec.measure = 300.0;
  spec.seed = 23;
  spec.fault_mtbf = 150.0;
  spec.fault_mttr = 30.0;
  spec.max_retries = 3;
  const auto a = harness::run_experiment(spec);
  const auto b = harness::run_experiment(spec);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.receptions_recovered, b.receptions_recovered);
  EXPECT_EQ(a.tasks_recovered, b.tasks_recovered);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.reception_delay_mean, b.reception_delay_mean);
  EXPECT_EQ(a.delivered_fraction, b.delivered_fraction);
}

}  // namespace
}  // namespace pstar
