// Cross-module edge cases: degenerate shapes, boundary parameters, and
// interactions the per-module suites don't reach.

#include <gtest/gtest.h>

#include "pstar/core/policy_factory.hpp"
#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/queueing/throughput.hpp"
#include "pstar/routing/combined.hpp"
#include "pstar/routing/star_probabilities.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"
#include "pstar/traffic/workload.hpp"

namespace pstar {
namespace {

using topo::Shape;
using topo::Torus;

//----------------------------------------------------------------------
// Degenerate topologies.
//----------------------------------------------------------------------

TEST(EdgeCases, SingleNodeTorusHasNoLinks) {
  const Torus t(Shape{1});
  EXPECT_EQ(t.link_count(), 0);
  EXPECT_EQ(t.degree(), 0);
  EXPECT_DOUBLE_EQ(t.average_distance(), 0.0);
  EXPECT_EQ(t.diameter(), 0);
}

TEST(EdgeCases, SingleNodeBroadcastWorkload) {
  const Torus t(Shape{1});
  sim::Rng rng(1);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  traffic::WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.5;
  cfg.stop_time = 100.0;
  traffic::Workload w(sim, engine, rng, cfg);
  engine.begin_measurement();
  w.start();
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions, 0u);
  EXPECT_EQ(engine.metrics().tasks_completed[0],
            engine.metrics().tasks_generated[0]);
}

TEST(EdgeCases, TwoNodeRingBroadcast) {
  const Torus t(Shape{2});
  sim::Rng rng(2);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  engine.begin_measurement();
  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions, 1u);
  EXPECT_DOUBLE_EQ(engine.metrics().broadcast_delay.mean(), 1.0);
}

TEST(EdgeCases, LongThinTorus) {
  // 2 x 32: one hypercube-degenerate dimension next to a long ring.
  const Torus t(Shape{2, 32});
  EXPECT_EQ(t.degree(), 3);
  EXPECT_EQ(t.link_count(), 64 * 3);
  const auto p = routing::star_probabilities(t);
  ASSERT_TRUE(p.feasible);
  const auto load = routing::predicted_dimension_load(t, p.x, 1.0, 0.0);
  EXPECT_NEAR(load[0], load[1], 1e-9);
}

TEST(EdgeCases, AllSizeOneButOneDimension) {
  const Torus t(Shape{1, 1, 5, 1});
  EXPECT_EQ(t.degree(), 2);
  sim::Rng rng(3);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  engine.begin_measurement();
  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions, 4u);
  EXPECT_EQ(engine.metrics().tasks_completed[0], 1u);
}

TEST(EdgeCases, MaxSupportedDimensions) {
  // kMaxDims-dimensional hypercube routes fine; one more is rejected.
  const Torus ok(Shape::hypercube(net::kMaxDims));
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = routing::uniform_probabilities(net::kMaxDims).x;
  cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
  EXPECT_NO_THROW(routing::SdcBroadcastPolicy(ok, cfg));

  const Torus too_big(Shape::hypercube(net::kMaxDims + 1));
  routing::SdcBroadcastConfig cfg2;
  cfg2.ending_probabilities =
      routing::uniform_probabilities(net::kMaxDims + 1).x;
  cfg2.priorities = cfg.priorities;
  EXPECT_THROW(routing::SdcBroadcastPolicy(too_big, cfg2),
               std::invalid_argument);
  EXPECT_THROW(routing::UnicastPolicy(too_big, routing::UnicastConfig{}),
               std::invalid_argument);
}

//----------------------------------------------------------------------
// Policy wiring failure modes.
//----------------------------------------------------------------------

TEST(EdgeCases, CombinedPolicyWithoutUnicastThrowsOnUnicast) {
  const Torus t(Shape{4, 4});
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = routing::uniform_probabilities(2).x;
  cfg.priorities = routing::priority_map(routing::Discipline::kTwoClass);
  routing::CombinedPolicy policy(
      std::make_unique<routing::SdcBroadcastPolicy>(t, cfg), nullptr);
  sim::Rng rng(4);
  sim::Simulator sim;
  net::Engine engine(sim, t, policy, rng);
  EXPECT_NO_THROW(engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1));
  EXPECT_THROW(engine.create_task(net::TaskKind::kUnicast, 0, 1, 1),
               std::logic_error);
}

TEST(EdgeCases, SdcPolicyRejectsWrongArityProbabilities) {
  const Torus t(Shape{4, 4});
  routing::SdcBroadcastConfig cfg;
  cfg.ending_probabilities = {1.0};  // needs 2 entries
  cfg.priorities = routing::priority_map(routing::Discipline::kFcfs);
  EXPECT_THROW(routing::SdcBroadcastPolicy(t, cfg), std::invalid_argument);
}

//----------------------------------------------------------------------
// Throughput-factor formula edges.
//----------------------------------------------------------------------

TEST(EdgeCases, RhoZeroMeansZeroRates) {
  const Torus t(Shape{4, 4});
  const auto r = queueing::rates_for_rho(t, 0.0, 0.5);
  EXPECT_DOUBLE_EQ(r.lambda_b, 0.0);
  EXPECT_DOUBLE_EQ(r.lambda_r, 0.0);
}

TEST(EdgeCases, PureUnicastRates) {
  const Torus t(Shape{8, 8});
  const auto r = queueing::rates_for_rho(t, 0.6, 0.0);
  EXPECT_DOUBLE_EQ(r.lambda_b, 0.0);
  EXPECT_GT(r.lambda_r, 0.0);
  EXPECT_NEAR(queueing::torus_rho(t, 0.0, r.lambda_r), 0.6, 1e-12);
}

TEST(EdgeCases, SeparateFamilyClosedForm) {
  EXPECT_NEAR(queueing::separate_family_max_rho(1), 1.0, 1e-12);
  EXPECT_NEAR(queueing::separate_family_max_rho(2), 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(queueing::separate_family_max_rho(1000), 2.0 / 3.0, 1e-3);
}

//----------------------------------------------------------------------
// Simulator / engine interaction edges.
//----------------------------------------------------------------------

TEST(EdgeCases, MeasurementWindowBoundariesAreHalfOpen) {
  // A task created exactly at begin_measurement time is measured; the
  // harness's warmup event runs before same-time arrivals because it is
  // scheduled first (deterministic tie-break).
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.3;
  spec.warmup = 0.0;  // measure from the very start
  spec.measure = 300.0;
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable);
  EXPECT_GT(r.measured_broadcasts, 0u);
}

TEST(EdgeCases, BackToBackRunsOnOneSimulator) {
  // The engine supports multiple generation/drain cycles.
  const Torus t(Shape{4, 4});
  sim::Rng rng(5);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  for (int round = 0; round < 5; ++round) {
    engine.create_task(net::TaskKind::kBroadcast, round, 0, 1);
    sim.run();
    EXPECT_EQ(engine.inflight_copies(), 0u);
  }
  EXPECT_EQ(engine.metrics().tasks_completed[0], 5u);
  EXPECT_EQ(engine.metrics().transmissions, 5u * 15u);
}

TEST(EdgeCases, TaskSlotRecyclingKeepsMetricsConsistent) {
  // Thousands of tasks through a small table: recycled slots must never
  // corrupt counts.
  const Torus t(Shape{3, 3});
  sim::Rng rng(6);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  traffic::WorkloadConfig cfg;
  cfg.lambda_broadcast = 0.05;
  cfg.stop_time = 5000.0;
  traffic::Workload w(sim, engine, rng, cfg);
  w.start();
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[0], m.tasks_generated[0]);
  EXPECT_EQ(m.transmissions, m.tasks_generated[0] * 8u);
  EXPECT_EQ(engine.inflight_copies(), 0u);
}

TEST(EdgeCases, VariableLengthsInterleaveCorrectly) {
  // A long packet monopolizes its link; a later short one on another
  // link is unaffected (per-link servers are independent).
  const Torus t(Shape{4, 4});
  sim::Rng rng(7);
  auto policy = core::make_policy(t, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, t, *policy, rng);
  engine.begin_measurement();
  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 10);
  engine.create_task(net::TaskKind::kBroadcast, 5, 0, 1);
  sim.run();
  const auto& m = engine.metrics();
  EXPECT_EQ(m.tasks_completed[0], 2u);
  // The long broadcast needs 10x the idle-network time of the short one.
  EXPECT_GE(m.broadcast_delay.max(), 40.0);
  EXPECT_LE(m.broadcast_delay.min(), 15.0);
}

//----------------------------------------------------------------------
// Harness spec edges.
//----------------------------------------------------------------------

TEST(EdgeCases, MixedWraparoundExperiment) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 6};
  spec.wraparound = {true, false};  // cylinder
  spec.rho = 0.4;
  spec.warmup = 200.0;
  spec.measure = 800.0;
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable);
  EXPECT_GT(r.measured_broadcasts, 0u);
}

TEST(EdgeCases, HotspotExperimentRuns) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 4};
  spec.rho = 0.5;
  spec.warmup = 200.0;
  spec.measure = 800.0;
  spec.hotspot_fraction = 0.3;
  spec.hotspot_node = 7;
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable);
  // Mean utilization is set by offered load, not by where it originates.
  EXPECT_NEAR(r.utilization_mean, 0.5, 0.06);
}

TEST(EdgeCases, UtilizationByDimSumsToMean) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{4, 8};
  spec.rho = 0.5;
  spec.broadcast_fraction = 0.5;
  spec.warmup = 300.0;
  spec.measure = 1500.0;
  const auto r = harness::run_experiment(spec);
  ASSERT_EQ(r.utilization_by_dim.size(), 2u);
  // Both dimensions have the same link count here, so the mean of the
  // per-dim means equals the global mean.
  EXPECT_NEAR((r.utilization_by_dim[0] + r.utilization_by_dim[1]) / 2.0,
              r.utilization_mean, 1e-9);
  // Balanced scheme: the two dimensions match.
  EXPECT_NEAR(r.utilization_by_dim[0], r.utilization_by_dim[1], 0.05);
}

}  // namespace
}  // namespace pstar
