#include "pstar/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&order](Simulator&) { order.push_back(3); });
  q.push(1.0, [&order](Simulator&) { order.push_back(1); });
  q.push(2.0, [&order](Simulator&) { order.push_back(2); });
  Simulator dummy;
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    fn(dummy);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i](Simulator&) { order.push_back(i); });
  }
  Simulator dummy;
  while (!q.empty()) q.pop().second(dummy);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(9.0, [](Simulator&) {});
  q.push(4.0, [](Simulator&) {});
  EXPECT_DOUBLE_EQ(q.next_time(), 4.0);
}

TEST(EventQueue, SequenceNumbersIncrease) {
  EventQueue q;
  const auto a = q.push(1.0, [](Simulator&) {});
  const auto b = q.push(1.0, [](Simulator&) {});
  EXPECT_LT(a, b);
}

TEST(EventQueue, ClearEmptiesQueue) {
  EventQueue q;
  q.push(1.0, [](Simulator&) {});
  q.push(2.0, [](Simulator&) {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomizedHeapOrderProperty) {
  EventQueue q;
  Rng rng(99);
  // Interleave pushes and pops; popped times must be non-decreasing and
  // never exceed any remaining element.
  double last = -1.0;
  Simulator dummy;
  for (int round = 0; round < 2000; ++round) {
    if (q.empty() || rng.bernoulli(0.6)) {
      // Push a time at or after the last popped time so that the
      // monotonicity property can hold.
      q.push(last + rng.uniform() * 10.0, [](Simulator&) {});
    } else {
      auto [t, fn] = q.pop();
      EXPECT_GE(t, last);
      last = t;
    }
  }
  while (!q.empty()) {
    auto [t, fn] = q.pop();
    EXPECT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace pstar::sim
