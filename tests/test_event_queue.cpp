// Scheduler-contract tests, parameterized over BOTH pending-event-set
// backends (binary heap and calendar queue) through the make_scheduler
// factory: every backend must pop in (time, insertion-order) order,
// report the earliest pending time, and survive interleaved workloads.
// Backend-specific behaviour (bucket resizing, overflow handling) lives
// in test_calendar_queue.cpp.

#include "pstar/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar::sim {
namespace {

class SchedulerContract : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  std::unique_ptr<Scheduler> make() { return make_scheduler(GetParam()); }
};

TEST_P(SchedulerContract, StartsEmpty) {
  auto q = make();
  EXPECT_TRUE(q->empty());
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(SchedulerContract, PopsInTimeOrder) {
  auto q = make();
  std::vector<int> order;
  q->push(3.0, [&order](Simulator&) { order.push_back(3); });
  q->push(1.0, [&order](Simulator&) { order.push_back(1); });
  q->push(2.0, [&order](Simulator&) { order.push_back(2); });
  Simulator dummy;
  while (!q->empty()) {
    auto [t, fn] = q->pop();
    fn(dummy);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SchedulerContract, TiesBreakByInsertionOrder) {
  auto q = make();
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q->push(5.0, [&order, i](Simulator&) { order.push_back(i); });
  }
  Simulator dummy;
  while (!q->empty()) q->pop().second(dummy);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(SchedulerContract, NextTimeReportsEarliest) {
  auto q = make();
  q->push(9.0, [](Simulator&) {});
  q->push(4.0, [](Simulator&) {});
  EXPECT_DOUBLE_EQ(q->next_time(), 4.0);
}

TEST_P(SchedulerContract, SequenceNumbersIncrease) {
  auto q = make();
  const auto a = q->push(1.0, [](Simulator&) {});
  const auto b = q->push(1.0, [](Simulator&) {});
  EXPECT_LT(a, b);
}

TEST_P(SchedulerContract, ClearEmptiesQueue) {
  auto q = make();
  q->push(1.0, [](Simulator&) {});
  q->push(2.0, [](Simulator&) {});
  q->clear();
  EXPECT_TRUE(q->empty());
  // A cleared queue must be fully usable again.
  q->push(7.0, [](Simulator&) {});
  EXPECT_EQ(q->size(), 1u);
  EXPECT_DOUBLE_EQ(q->next_time(), 7.0);
}

TEST_P(SchedulerContract, SizeTracksPushesAndPops) {
  auto q = make();
  for (int i = 0; i < 100; ++i) q->push(static_cast<double>(i), [](Simulator&) {});
  EXPECT_EQ(q->size(), 100u);
  for (int i = 0; i < 40; ++i) q->pop();
  EXPECT_EQ(q->size(), 60u);
}

TEST_P(SchedulerContract, RandomizedOrderProperty) {
  auto q = make();
  Rng rng(99);
  // Interleave pushes and pops; popped times must be non-decreasing and
  // never exceed any remaining element.
  double last = -1.0;
  for (int round = 0; round < 2000; ++round) {
    if (q->empty() || rng.bernoulli(0.6)) {
      // Push a time at or after the last popped time so that the
      // monotonicity property can hold.
      q->push(last + rng.uniform() * 10.0, [](Simulator&) {});
    } else {
      auto [t, fn] = q->pop();
      EXPECT_GE(t, last);
      last = t;
    }
  }
  while (!q->empty()) {
    auto [t, fn] = q->pop();
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST_P(SchedulerContract, MoveOnlyCallbackPayloads) {
  // EventFn accepts move-only callables (the engine captures unique
  // state in recovery timers); both backends must relocate them safely
  // through their internal moves.
  auto q = make();
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q->push(1.0, [p = std::move(payload), &seen](Simulator&) { seen = *p + 1; });
  Simulator dummy;
  q->pop().second(dummy);
  EXPECT_EQ(seen, 42);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SchedulerContract,
    ::testing::Values(SchedulerKind::kHeap, SchedulerKind::kCalendar),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      return std::string(scheduler_name(info.param));
    });

}  // namespace
}  // namespace pstar::sim
