#include "pstar/core/policy_factory.hpp"
#include "pstar/core/scheme.hpp"

#include <gtest/gtest.h>

#include "pstar/queueing/throughput.hpp"

namespace pstar::core {
namespace {

using topo::Shape;
using topo::Torus;

TEST(Scheme, PriorityStarPreset) {
  const Scheme s = Scheme::priority_star();
  EXPECT_EQ(s.name, "priority-STAR");
  EXPECT_EQ(s.balancing, Balancing::kBalanced);
  EXPECT_EQ(s.discipline, routing::Discipline::kTwoClass);
}

TEST(Scheme, ThreeClassPreset) {
  const Scheme s = Scheme::priority_star_three_class();
  EXPECT_EQ(s.discipline, routing::Discipline::kThreeClass);
  EXPECT_EQ(s.balancing, Balancing::kBalanced);
}

TEST(Scheme, FcfsDirectPreset) {
  const Scheme s = Scheme::fcfs_direct();
  EXPECT_EQ(s.balancing, Balancing::kUniform);
  EXPECT_EQ(s.discipline, routing::Discipline::kFcfs);
}

TEST(Scheme, StarFcfsIsolatesBalancing) {
  const Scheme s = Scheme::star_fcfs();
  EXPECT_EQ(s.balancing, Balancing::kBalanced);
  EXPECT_EQ(s.discipline, routing::Discipline::kFcfs);
}

TEST(Scheme, FixedOrderDefaultsToLastDimension) {
  const Torus t(Shape{4, 4, 4});
  const auto p = Scheme::fixed_order().probabilities(t, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(p.x[2], 1.0);
  const auto p1 = Scheme::fixed_order(0).probabilities(t, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(p1.x[0], 1.0);
}

TEST(Scheme, BalancedProbabilitiesDependOnTraffic) {
  const Torus t(Shape{4, 8});
  const Scheme s = Scheme::priority_star();
  const auto bcast_only = s.probabilities(t, 1.0, 0.0);
  const auto rates = queueing::rates_for_rho(t, 0.8, 0.5);
  const auto mixed = s.probabilities(t, rates.lambda_b, rates.lambda_r);
  EXPECT_NE(bcast_only.x[0], mixed.x[0]);
}

TEST(Scheme, UniformProbabilitiesIgnoreTraffic) {
  const Torus t(Shape{4, 8});
  const Scheme s = Scheme::fcfs_direct();
  const auto a = s.probabilities(t, 1.0, 0.0);
  const auto b = s.probabilities(t, 0.1, 0.9);
  EXPECT_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.x[0], 0.5);
}

TEST(Scheme, RegistryNamesAreUniqueAndResolvable) {
  const auto all = Scheme::all();
  EXPECT_GE(all.size(), 7u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
    const auto resolved = Scheme::by_name(all[i].name);
    ASSERT_TRUE(resolved.has_value()) << all[i].name;
    EXPECT_EQ(resolved->balancing, all[i].balancing);
    EXPECT_EQ(resolved->discipline, all[i].discipline);
  }
  EXPECT_FALSE(Scheme::by_name("no-such-scheme").has_value());
}

TEST(Scheme, SeparateStarIgnoresUnicastLoad) {
  const Torus t(Shape{4, 8});
  const Scheme s = Scheme::separate_star();
  const auto a = s.probabilities(t, 1.0, 0.0);
  const auto b = s.probabilities(t, 0.2, 5.0);
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]);
  }
  // ...and equals Eq. (2) exactly.
  const auto eq2 = routing::star_probabilities(t);
  EXPECT_NEAR(a.x[0], eq2.x[0], 1e-12);
}

TEST(PolicyFactory, BuildsAllSubPolicies) {
  const Torus t(Shape{4, 4});
  auto policy = make_policy(t, Scheme::priority_star(), 0.01, 0.01);
  ASSERT_NE(policy, nullptr);
  EXPECT_NE(policy->broadcast(), nullptr);
  EXPECT_NE(policy->unicast(), nullptr);
  EXPECT_NE(policy->multicast(), nullptr);
}

TEST(PolicyFactory, BroadcastSamplerUsesBalancedVector) {
  const Torus t(Shape{4, 8});
  auto policy = make_policy(t, Scheme::priority_star(), 1.0, 0.0);
  const auto expect = routing::star_probabilities(t);
  EXPECT_NEAR(policy->broadcast()->ending_probability(0), expect.x[0], 1e-12);
  EXPECT_NEAR(policy->broadcast()->ending_probability(1), expect.x[1], 1e-12);
}

}  // namespace
}  // namespace pstar::core
