// Meshes (tori without wraparound), which Section 2 of the paper uses
// for its throughput-factor examples: the rho formula with average
// degree 4 - 4/n, and the ~0.5 cap on broadcast throughput caused by
// boundary nodes having fewer links.

#include <gtest/gtest.h>

#include <set>

#include "pstar/core/policy_factory.hpp"
#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/queueing/throughput.hpp"
#include "pstar/routing/sdc_broadcast.hpp"
#include "pstar/routing/star_probabilities.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"

namespace pstar {
namespace {

using topo::Dir;
using topo::Shape;
using topo::Torus;

TEST(Mesh, LinkCountsExcludeBoundary) {
  // n x n mesh: 2 n (n-1) undirected edges -> 4 n (n-1) directed links.
  const Torus m = Torus::mesh(Shape{4, 4});
  EXPECT_EQ(m.link_count(), 4 * 4 * 3);
  EXPECT_EQ(m.links_in_dim(0), 2 * 4 * 3);
  EXPECT_FALSE(m.is_torus());
  EXPECT_TRUE(Torus(Shape{4, 4}).is_torus());
}

TEST(Mesh, AverageDegreeMatchesPaperFormula) {
  // Paper, Section 2: d-D n x ... x n mesh has 2d - 2d/n links per node.
  for (std::int32_t n : {3, 4, 8}) {
    const Torus m2 = Torus::mesh(Shape{n, n});
    EXPECT_NEAR(m2.average_degree(), 4.0 - 4.0 / n, 1e-12) << "n=" << n;
    const Torus m3 = Torus::mesh(Shape{n, n, n});
    EXPECT_NEAR(m3.average_degree(), 6.0 - 6.0 / n, 1e-12) << "n=" << n;
  }
}

TEST(Mesh, BoundaryNodesLackLinks) {
  const Torus m = Torus::mesh(Shape{5});
  EXPECT_EQ(m.link(0, 0, Dir::kMinus), topo::kInvalidLink);
  EXPECT_NE(m.link(0, 0, Dir::kPlus), topo::kInvalidLink);
  EXPECT_EQ(m.link(4, 0, Dir::kPlus), topo::kInvalidLink);
  EXPECT_NE(m.link(2, 0, Dir::kMinus), topo::kInvalidLink);
}

TEST(Mesh, MixedWraparound) {
  // Cylinder: dim 0 wraps, dim 1 does not.
  const Torus c(Shape{4, 4}, {true, false});
  EXPECT_TRUE(c.wraps(0));
  EXPECT_FALSE(c.wraps(1));
  EXPECT_EQ(c.links_in_dim(0), 32);
  EXPECT_EQ(c.links_in_dim(1), 24);
}

TEST(Mesh, LineMeanDistanceMatchesBruteForce) {
  for (std::int32_t n = 1; n <= 10; ++n) {
    double total = 0.0;
    for (std::int32_t a = 0; a < n; ++a) {
      for (std::int32_t b = 0; b < n; ++b) total += std::abs(a - b);
    }
    EXPECT_NEAR(topo::line_mean_distance(n), total / (n * n), 1e-12) << n;
  }
}

TEST(Mesh, DiameterIsCornerToCorner) {
  EXPECT_EQ(Torus::mesh(Shape{8, 8}).diameter(), 14);
  EXPECT_EQ(Torus(Shape{8, 8}).diameter(), 8);
  EXPECT_EQ(Torus(Shape{8, 8}, {true, false}).diameter(), 4 + 7);
}

TEST(Mesh, MeshBroadcastRhoFormulaConsistent) {
  // The generic torus_rho on a mesh must equal the paper's closed-form
  // mesh formula rho = lambda_b (n^2 - 1)/(4 - 4/n).
  for (std::int32_t n : {4, 8, 16}) {
    const Torus m = Torus::mesh(Shape{n, n});
    const double lambda_b = 0.001;
    EXPECT_NEAR(queueing::torus_rho(m, lambda_b, 0.0),
                queueing::mesh_broadcast_rho(n, lambda_b), 1e-12)
        << "n=" << n;
  }
}

class MeshBroadcast : public ::testing::TestWithParam<Shape> {};

TEST_P(MeshBroadcast, SdcTreeCoversMeshExactlyOnce) {
  const Torus m = Torus::mesh(GetParam());
  for (topo::NodeId source = 0; source < m.node_count();
       source += std::max<topo::NodeId>(1, m.node_count() / 5)) {
    for (std::int32_t l = 0; l < m.dims(); ++l) {
      const auto edges = routing::build_sdc_tree(m, source, l);
      ASSERT_EQ(static_cast<std::int64_t>(edges.size()), m.node_count() - 1);
      std::set<topo::NodeId> received{source};
      for (const auto& e : edges) {
        EXPECT_TRUE(received.count(e.from));
        EXPECT_TRUE(received.insert(e.to).second);
      }
    }
  }
}

TEST_P(MeshBroadcast, EngineBroadcastDeliversEverywhere) {
  const Torus m = Torus::mesh(GetParam());
  sim::Rng rng(77);
  auto policy = core::make_policy(m, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;
  net::Engine engine(sim, m, *policy, rng);
  engine.begin_measurement();
  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  sim.run();
  EXPECT_EQ(engine.metrics().transmissions,
            static_cast<std::uint64_t>(m.node_count() - 1));
  EXPECT_EQ(engine.metrics().tasks_completed[0], 1u);
  // From a corner the tree depth is the full corner-to-corner diameter.
  EXPECT_DOUBLE_EQ(engine.metrics().broadcast_delay.mean(),
                   static_cast<double>(m.diameter()));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshBroadcast,
                         ::testing::Values(Shape{5, 5}, Shape{4, 8},
                                           Shape{3, 4, 5}, Shape{2, 6},
                                           Shape{7}),
                         [](const auto& info) {
                           std::string name = info.param.to_string();
                           for (char& c : name) {
                             if (c == 'x') c = '_';
                           }
                           return name;
                         });

TEST(Mesh, UnicastTakesTheUniqueShortestPath) {
  const Torus m = Torus::mesh(Shape{8});
  sim::Rng rng(78);
  routing::UnicastPolicy policy(m, routing::UnicastConfig{});
  sim::Simulator sim;
  net::Engine engine(sim, m, policy, rng);
  engine.begin_measurement();
  // 0 -> 7 on a line must take 7 hops (no wraparound shortcut).
  engine.create_task(net::TaskKind::kUnicast, 0, 7, 1);
  sim.run();
  EXPECT_DOUBLE_EQ(engine.metrics().unicast_delay.mean(), 7.0);
}

TEST(Mesh, BroadcastSaturatesWellBelowTorus) {
  // The paper's Section 2 point: mesh broadcast cannot exceed ~0.5-0.6
  // throughput factor (boundary nodes have too few incoming links) while
  // the torus reaches ~1.  Compare stability at rho = 0.8.
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.rho = 0.8;
  spec.warmup = 400.0;
  spec.measure = 1600.0;
  spec.seed = 5;
  const auto torus_run = harness::run_experiment(spec);
  EXPECT_FALSE(torus_run.unstable || torus_run.saturated);

  harness::ExperimentSpec mesh_spec = spec;
  mesh_spec.mesh = true;
  const auto mesh_run = harness::run_experiment(mesh_spec);
  EXPECT_TRUE(mesh_run.saturated || mesh_run.unstable);
}

TEST(Mesh, BroadcastStableAtLowLoad) {
  harness::ExperimentSpec spec;
  spec.shape = Shape{8, 8};
  spec.mesh = true;
  spec.rho = 0.3;
  spec.warmup = 400.0;
  spec.measure = 1600.0;
  spec.seed = 6;
  const auto r = harness::run_experiment(spec);
  EXPECT_FALSE(r.unstable || r.saturated);
  EXPECT_GT(r.measured_broadcasts, 100u);
  // Mesh paths are longer than torus paths at equal shape.
  EXPECT_GT(r.reception_delay_mean, 5.0);
}

}  // namespace
}  // namespace pstar
