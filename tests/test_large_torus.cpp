// Large-scale smoke test: one broadcast on a 64x64x64 torus (262,144
// nodes, 1,572,864 directed links) runs to completion and reaches every
// node.  This exercises the slab-allocated engine state and the
// calendar queue at the scale the cache-layout work targets -- the
// same-instant wavefront alone is tens of thousands of events -- in a
// few seconds of wall time.
//
// Tagged LABELS "large" in CMake so quick iterations can skip it with
//   ctest -LE large
// (the full `ctest` run still includes it).

#include <gtest/gtest.h>

#include "pstar/core/policy_factory.hpp"
#include "pstar/harness/experiment.hpp"
#include "pstar/net/engine.hpp"
#include "pstar/sim/rng.hpp"
#include "pstar/sim/simulator.hpp"
#include "pstar/topology/torus.hpp"

namespace {

using namespace pstar;

TEST(LargeTorus, SingleBroadcastReachesAllNodes64Cubed) {
  const topo::Torus torus{topo::Shape{64, 64, 64}};
  ASSERT_EQ(torus.node_count(), 262144);
  ASSERT_EQ(torus.link_count(), 6 * 262144);

  sim::Rng rng(1);
  auto policy =
      core::make_policy(torus, core::Scheme::priority_star(), 1.0, 0.0);
  sim::Simulator sim;  // calendar scheduler (the default)
  net::Engine engine(sim, torus, *policy, rng);

  engine.create_task(net::TaskKind::kBroadcast, 0, 0, 1);
  const sim::StopReason reason = sim.run();

  EXPECT_EQ(reason, sim::StopReason::kDrained);
  const auto& m = engine.metrics();
  // Every node except the source receives exactly one copy; nothing lost.
  EXPECT_EQ(m.broadcast_receptions,
            static_cast<std::uint64_t>(torus.node_count() - 1));
  EXPECT_EQ(m.lost_receptions, 0u);
  EXPECT_GT(sim.events_executed(), 0u);
}

TEST(LargeTorus, ShortHorizonLoadedWindow64Cubed) {
  // A short loaded window through the full harness: light load (the
  // point is scale, not saturation), tiny warmup/measure, and the
  // delivered fraction must be exactly 1.0 -- nothing lost at scale.
  harness::ExperimentSpec spec;
  spec.shape = topo::Shape{64, 64, 64};
  spec.rho = 0.05;
  spec.warmup = 0.0;
  spec.measure = 30.0;
  spec.seed = 3;
  const harness::ExperimentResult r = harness::run_experiment(spec);

  EXPECT_FALSE(r.unstable);
  EXPECT_EQ(r.stop_reason, sim::StopReason::kDrained);
  EXPECT_EQ(r.delivered_fraction, 1.0);
  EXPECT_EQ(r.drops, 0u);
  EXPECT_GT(r.measured_broadcasts, 0u);
  EXPECT_GT(r.events_processed, 100000u);
  EXPECT_GT(r.events_per_sec, 0.0);
  EXPECT_GT(r.peak_rss_bytes, 0u);
}

TEST(LargeTorus, ShardedShortHorizon64Cubed) {
  // The same short loaded window through the sharded engine
  // (docs/PARALLEL.md): four slabs of 65,536 nodes, conservative
  // windows, handoffs across slab boundaries.  Nothing may be lost, and
  // the run must drain -- a stuck cross-shard proxy would hang the
  // window loop's drain detection instead.
  harness::ExperimentSpec spec;
  spec.shape = topo::Shape{64, 64, 64};
  spec.rho = 0.05;
  spec.warmup = 0.0;
  spec.measure = 30.0;
  spec.seed = 3;
  spec.shards = 4;
  const harness::ExperimentResult r = harness::run_experiment(spec);

  EXPECT_FALSE(r.unstable);
  EXPECT_EQ(r.stop_reason, sim::StopReason::kDrained);
  EXPECT_EQ(r.delivered_fraction, 1.0);
  EXPECT_EQ(r.drops, 0u);
  EXPECT_EQ(r.lost_receptions, 0u);
  EXPECT_GT(r.measured_broadcasts, 0u);
  EXPECT_GT(r.events_processed, 100000u);
}

}  // namespace
