#include "pstar/routing/priorities.hpp"

#include <gtest/gtest.h>

namespace pstar::routing {
namespace {

using net::Priority;

TEST(Priorities, FcfsPutsEverythingInOneClass) {
  const PriorityMap m = priority_map(Discipline::kFcfs);
  EXPECT_EQ(m.broadcast_tree, Priority::kHigh);
  EXPECT_EQ(m.broadcast_ending, Priority::kHigh);
  EXPECT_EQ(m.unicast, Priority::kHigh);
}

TEST(Priorities, TwoClassDemotesEndingDimension) {
  const PriorityMap m = priority_map(Discipline::kTwoClass);
  EXPECT_EQ(m.broadcast_tree, Priority::kHigh);
  EXPECT_EQ(m.broadcast_ending, Priority::kLow);
  EXPECT_EQ(m.unicast, Priority::kHigh);
}

TEST(Priorities, ThreeClassPutsUnicastInTheMiddle) {
  const PriorityMap m = priority_map(Discipline::kThreeClass);
  EXPECT_EQ(m.broadcast_tree, Priority::kHigh);
  EXPECT_EQ(m.unicast, Priority::kMedium);
  EXPECT_EQ(m.broadcast_ending, Priority::kLow);
}

TEST(Priorities, TreeClassNeverBelowEndingClass) {
  // Invariant behind the paper's delay analysis: the bulky ending-
  // dimension traffic must never outrank the tree traffic.
  for (Discipline d :
       {Discipline::kFcfs, Discipline::kTwoClass, Discipline::kThreeClass}) {
    const PriorityMap m = priority_map(d);
    EXPECT_LE(static_cast<int>(m.broadcast_tree),
              static_cast<int>(m.broadcast_ending));
  }
}

}  // namespace
}  // namespace pstar::routing
